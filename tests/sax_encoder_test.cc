#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "sax/multires_encoder.h"
#include "sax/numerosity.h"
#include "sax/sax_encoder.h"
#include "sax/token_table.h"
#include "util/rng.h"

namespace egi::sax {
namespace {

// ------------------------------------------------------------ token table

TEST(TokenTableTest, InternAssignsDenseIds) {
  const WordCodec codec(2, 4);
  TokenTable t(codec);
  EXPECT_EQ(t.Intern(codec.PackText("ab")), 0);
  EXPECT_EQ(t.Intern(codec.PackText("bc")), 1);
  EXPECT_EQ(t.Intern(codec.PackText("ab")), 0);  // idempotent
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.Word(0), "ab");
  EXPECT_EQ(t.Word(1), "bc");
}

TEST(TokenTableTest, FindWithoutInsert) {
  const WordCodec codec(2, 26);
  TokenTable t(codec);
  t.Intern(codec.PackText("xy"));
  EXPECT_EQ(t.Find(codec.PackText("xy")), 0);
  EXPECT_EQ(t.Find(codec.PackText("zz")), -1);
}

TEST(TokenTableTest, CodeStringRoundTripsThroughTable) {
  // Every interned id renders back to the word it was packed from, and the
  // rendered word re-packs to a code that finds the same id.
  const WordCodec codec(5, 8);
  TokenTable t(codec);
  Rng rng(21);
  std::vector<std::string> words;
  for (int k = 0; k < 200; ++k) {
    std::string w(5, 'a');
    for (auto& ch : w)
      ch = static_cast<char>('a' + rng.UniformInt(0, 7));
    words.push_back(w);
    t.Intern(codec.PackText(w));
  }
  for (const auto& w : words) {
    const int32_t id = t.Find(codec.PackText(w));
    ASSERT_GE(id, 0);
    EXPECT_EQ(t.Word(id), w);
    EXPECT_EQ(t.Find(t.CodeAt(id)), id);
  }
}

TEST(TokenTableTest, ManyWordsSurviveTableGrowth) {
  // 2000 distinct codes force several open-addressing growths; ids must
  // stay dense, stable, and findable throughout.
  const WordCodec codec(8, 16);
  TokenTable t(codec);
  std::vector<WordCode> codes;
  for (int i = 0; i < 2000; ++i) {
    std::vector<int> syms(8);
    int v = i;
    for (auto& s : syms) {
      s = v & 15;
      v >>= 4;
    }
    codes.push_back(codec.Pack(syms));
    EXPECT_EQ(t.Intern(codes.back()), i);
  }
  EXPECT_EQ(t.size(), 2000u);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(t.Find(codes[static_cast<size_t>(i)]), i);
    EXPECT_EQ(t.CodeAt(i), codes[static_cast<size_t>(i)]);
  }
}

// ------------------------------------------------------ numerosity (Eq. 2/3)

TEST(NumerosityTest, PaperExampleEq2ToEq3) {
  // S = ba,ba,ba,dc,dc,aa,ac,ac with ids ba=0, dc=1, aa=2, ac=3.
  std::vector<int32_t> raw{0, 0, 0, 1, 1, 2, 3, 3};
  auto reduced = NumerosityReduce(raw);
  EXPECT_EQ(reduced.tokens, (std::vector<int32_t>{0, 1, 2, 3}));
  EXPECT_EQ(reduced.offsets, (std::vector<size_t>{0, 3, 5, 6}));
}

TEST(NumerosityTest, DisabledIsIdentity) {
  std::vector<int32_t> raw{0, 0, 1, 1};
  auto reduced = NumerosityReduce(raw, /*enabled=*/false);
  EXPECT_EQ(reduced.tokens, raw);
  EXPECT_EQ(reduced.offsets, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(NumerosityTest, EmptyInput) {
  auto reduced = NumerosityReduce(std::vector<int32_t>{});
  EXPECT_TRUE(reduced.tokens.empty());
}

TEST(NumerosityTest, ExpandRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int32_t> raw;
    const int runs = 1 + static_cast<int>(rng.UniformInt(0, 20));
    for (int r = 0; r < runs; ++r) {
      const auto tok = static_cast<int32_t>(rng.UniformInt(0, 4));
      const auto rep = static_cast<int>(rng.UniformInt(1, 5));
      for (int i = 0; i < rep; ++i) raw.push_back(tok);
    }
    auto reduced = NumerosityReduce(raw);
    EXPECT_EQ(NumerosityExpand(reduced, raw.size()), raw);
  }
}

TEST(NumerosityTest, AlternatingTokensNotReduced) {
  std::vector<int32_t> raw{0, 1, 0, 1};
  auto reduced = NumerosityReduce(raw);
  EXPECT_EQ(reduced.tokens, raw);
}

// ---------------------------------------------------------------- encoder

TEST(SaxWordTest, KnownSubsequenceWord) {
  // Ramp: z-normalized PAA coefficients ascend, so the word's symbols must
  // be non-decreasing and span the alphabet extremes.
  std::vector<double> ramp{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  auto word = SaxWordForSubsequence(ramp, 4, 4);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(word.value(), "abcd");
}

TEST(SaxWordTest, FlatSubsequenceMapsToMiddleSymbols) {
  std::vector<double> flat(16, 3.0);
  auto w3 = SaxWordForSubsequence(flat, 4, 3);
  ASSERT_TRUE(w3.ok());
  EXPECT_EQ(w3.value(), "bbbb");  // 0 falls in the middle region for a=3
  auto w4 = SaxWordForSubsequence(flat, 4, 4);
  ASSERT_TRUE(w4.ok());
  EXPECT_EQ(w4.value(), "cccc");  // boundary 0 belongs to the upper region
}

TEST(SaxWordTest, InvalidParamsRejected) {
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_FALSE(SaxWordForSubsequence(v, 5, 4).ok());   // w > n
  EXPECT_FALSE(SaxWordForSubsequence(v, 2, 1).ok());   // a < 2
  EXPECT_FALSE(SaxWordForSubsequence(v, 2, 100).ok()); // a > max
}

TEST(DiscretizeTest, RejectsUnpackableWordConfigurations) {
  // ValidateSaxParams enforces w * BitsPerSymbol(a) <= 128 so every layer
  // downstream may assume words pack into one WordCode.
  std::vector<double> v(300, 0.0);
  SaxParams p;
  p.window_length = 100;
  p.paa_size = 22;
  p.alphabet_size = 64;  // 22 * 6 = 132 bits: rejected
  EXPECT_FALSE(DiscretizeSeries(v, p).ok());
  p.paa_size = 21;  // 126 bits: the widest supported a=64 word
  EXPECT_TRUE(DiscretizeSeries(v, p).ok());
  p.paa_size = 26;
  p.alphabet_size = 20;  // 26 * 5 = 130 bits: rejected
  EXPECT_FALSE(DiscretizeSeries(v, p).ok());
  p.paa_size = 25;  // 125 bits
  EXPECT_TRUE(DiscretizeSeries(v, p).ok());
}

TEST(DiscretizeTest, ValidatesParams) {
  std::vector<double> v(100, 0.0);
  SaxParams p;
  p.window_length = 0;
  EXPECT_FALSE(DiscretizeSeries(v, p).ok());
  p.window_length = 101;
  EXPECT_FALSE(DiscretizeSeries(v, p).ok());
  p.window_length = 10;
  p.paa_size = 11;
  EXPECT_FALSE(DiscretizeSeries(v, p).ok());
}

TEST(DiscretizeTest, OffsetsStrictlyIncreaseAndStartAtZero) {
  Rng rng(4);
  std::vector<double> v(500);
  for (auto& x : v) x = rng.Gaussian();
  SaxParams p;
  p.window_length = 50;
  p.paa_size = 4;
  p.alphabet_size = 4;
  auto d = DiscretizeSeries(v, p);
  ASSERT_TRUE(d.ok());
  ASSERT_FALSE(d->seq.tokens.empty());
  EXPECT_EQ(d->seq.offsets.front(), 0u);
  for (size_t i = 1; i < d->seq.offsets.size(); ++i) {
    EXPECT_LT(d->seq.offsets[i - 1], d->seq.offsets[i]);
  }
  EXPECT_LE(d->seq.offsets.back(), d->num_positions() - 1);
}

TEST(DiscretizeTest, NumerosityReductionCollapsesConstantSeries) {
  std::vector<double> v(200, 1.0);
  SaxParams p;
  p.window_length = 20;
  p.paa_size = 4;
  p.alphabet_size = 4;
  auto d = DiscretizeSeries(v, p);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->seq.size(), 1u);  // one token after reduction
}

TEST(DiscretizeTest, WithoutReductionOneTokenPerPosition) {
  std::vector<double> v(100, 1.0);
  SaxParams p;
  p.window_length = 10;
  p.paa_size = 2;
  p.alphabet_size = 2;
  p.numerosity_reduction = false;
  auto d = DiscretizeSeries(v, p);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->seq.size(), 91u);
}

TEST(DiscretizeTest, PeriodicSeriesYieldsRepeatingTokens) {
  std::vector<double> v(400);
  for (size_t i = 0; i < v.size(); ++i)
    v[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 40.0);
  SaxParams p;
  p.window_length = 40;
  p.paa_size = 4;
  p.alphabet_size = 3;
  auto d = DiscretizeSeries(v, p);
  ASSERT_TRUE(d.ok());
  // Perfectly periodic data: far fewer distinct words than tokens.
  EXPECT_LT(d->table.size(), d->seq.size());
}

// ----------------------------------------------------- multi-res encoder

class MultiResEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MultiResEquivalenceTest, MatchesSingleResolutionEncoder) {
  const auto [w, a] = GetParam();
  Rng rng(static_cast<uint64_t>(w) * 31 + static_cast<uint64_t>(a));
  std::vector<double> v(600);
  for (size_t i = 0; i < v.size(); ++i)
    v[i] = rng.Gaussian() + std::sin(static_cast<double>(i) / 15.0);

  const size_t n = 60;
  SaxParams p;
  p.window_length = n;
  p.paa_size = w;
  p.alphabet_size = a;
  auto direct = DiscretizeSeries(v, p);
  ASSERT_TRUE(direct.ok());

  MultiResSaxEncoder encoder(v, n, /*amax=*/20);
  auto multi = encoder.Encode(w, a);
  ASSERT_TRUE(multi.ok());

  ASSERT_EQ(multi->seq.size(), direct->seq.size());
  EXPECT_EQ(multi->seq.offsets, direct->seq.offsets);
  // Token ids are interned per-encoder; compare the rendered words.
  for (size_t i = 0; i < multi->seq.size(); ++i) {
    EXPECT_EQ(multi->table.Word(multi->seq.tokens[i]),
              direct->table.Word(direct->seq.tokens[i]))
        << "token " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiResEquivalenceTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 7, 10, 15, 20),
                       ::testing::Values(2, 3, 4, 7, 10, 15, 20)));

TEST(MultiResEncoderTest, EncodeAllMatchesIndividualEncodes) {
  Rng rng(77);
  std::vector<double> v(400);
  for (auto& x : v) x = rng.Gaussian();
  MultiResSaxEncoder encoder(v, 40, 10);

  std::vector<WaParam> params{{2, 5}, {4, 4}, {4, 9}, {7, 2}, {10, 10}};
  auto batch = encoder.EncodeAll(params);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    auto single = encoder.Encode(params[i].paa_size, params[i].alphabet_size);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*batch)[i].seq.tokens, single->seq.tokens) << "param " << i;
    EXPECT_EQ((*batch)[i].seq.offsets, single->seq.offsets) << "param " << i;
  }
}

TEST(MultiResEncoderTest, RejectsAlphabetBeyondAmax) {
  std::vector<double> v(100, 0.0);
  MultiResSaxEncoder encoder(v, 10, 8);
  EXPECT_FALSE(encoder.Encode(4, 9).ok());
  EXPECT_TRUE(encoder.Encode(4, 8).ok());
}

TEST(MultiResEncoderTest, RejectsInvalidPaaSize) {
  std::vector<double> v(100, 0.0);
  MultiResSaxEncoder encoder(v, 10, 8);
  EXPECT_FALSE(encoder.Encode(11, 4).ok());  // w > window
  EXPECT_FALSE(encoder.Encode(0, 4).ok());
}

}  // namespace
}  // namespace egi::sax
