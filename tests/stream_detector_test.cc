#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/ensemble.h"
#include "datasets/random_walk.h"
#include "stream/detector.h"
#include "util/rng.h"

namespace egi::stream {
namespace {

StreamDetectorOptions SmallOptions() {
  StreamDetectorOptions opt;
  opt.ensemble.window_length = 40;
  opt.ensemble.wmax = 6;
  opt.ensemble.amax = 6;
  opt.ensemble.ensemble_size = 12;
  opt.ensemble.seed = 42;
  opt.buffer_capacity = 256;
  opt.refit_interval = 64;
  return opt;
}

std::vector<double> TestSeries(size_t length, uint64_t seed = 2020) {
  Rng rng(seed);
  return datasets::MakeRandomWalk(length, rng);
}

// The acceptance-criterion contract: at every refit boundary the streaming
// score curve is bitwise-identical to batch ComputeEnsembleDensity on the
// buffered window — including after the ring has begun evicting history.
TEST(StreamDetectorTest, ReplayEquivalentToBatchAtEveryRefit) {
  const auto opt = SmallOptions();
  StreamDetector detector(opt);
  const auto series = TestSeries(700);

  size_t refits_seen = 0;
  for (const double v : series) {
    const ScoredPoint pt = detector.Append(v);
    if (!pt.refit) continue;
    ++refits_seen;
    const auto buffered = detector.BufferSnapshot();
    const auto streaming_scores = detector.ScoresSnapshot();
    const auto batch = core::ComputeEnsembleDensity(buffered, opt.ensemble);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(streaming_scores.size(), batch->density.size());
    for (size_t i = 0; i < streaming_scores.size(); ++i) {
      // Bitwise equality, not near-equality: the refit path must reconcile
      // exactly against the batch algorithm.
      ASSERT_EQ(streaming_scores[i], batch->density[i]) << "at point " << i;
    }
  }
  EXPECT_EQ(refits_seen, series.size() / opt.refit_interval);
  EXPECT_EQ(detector.refit_count(), refits_seen);
  EXPECT_GT(detector.total_appended(), detector.buffered());  // evicted
}

TEST(StreamDetectorTest, UnscoredUntilFirstRefitThenProvisional) {
  const auto opt = SmallOptions();
  StreamDetector detector(opt);
  const auto series = TestSeries(200);

  for (size_t i = 0; i < series.size(); ++i) {
    const ScoredPoint pt = detector.Append(series[i]);
    EXPECT_EQ(pt.index, i);
    EXPECT_EQ(pt.value, series[i]);
    if (i + 1 < opt.refit_interval) {
      EXPECT_FALSE(pt.scored);
      EXPECT_FALSE(detector.fitted());
    } else if (i + 1 == opt.refit_interval) {
      EXPECT_TRUE(pt.refit);
      EXPECT_TRUE(pt.scored);
      EXPECT_FALSE(pt.provisional);
    } else if (!pt.refit) {
      // Between refits the incremental word-frequency path scores every
      // point with a provisional value in [0, 1].
      EXPECT_TRUE(pt.scored);
      EXPECT_TRUE(pt.provisional);
      EXPECT_GE(pt.score, 0.0);
      EXPECT_LE(pt.score, 1.0);
    }
  }

  // Snapshot entries appended before the first refit were all re-scored by
  // it; no NaN remains once a refit has covered the whole buffer.
  for (const double s : detector.ScoresSnapshot()) {
    if (!std::isnan(s)) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(StreamDetectorTest, ScoresBeforeFirstRefitAreNaNInSnapshot) {
  auto opt = SmallOptions();
  opt.refit_interval = 1000;  // never triggers in this test
  StreamDetector detector(opt);
  const auto series = TestSeries(50);
  for (const double v : series) detector.Append(v);
  const auto scores = detector.ScoresSnapshot();
  ASSERT_EQ(scores.size(), series.size());
  for (const double s : scores) EXPECT_TRUE(std::isnan(s));
}

TEST(StreamDetectorTest, RejectsNonFiniteWithoutBuffering) {
  StreamDetector detector(SmallOptions());
  detector.Append(1.0);
  const ScoredPoint nan_pt =
      detector.Append(std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(nan_pt.scored);
  EXPECT_EQ(nan_pt.index, 1u);
  const ScoredPoint inf_pt =
      detector.Append(std::numeric_limits<double>::infinity());
  EXPECT_FALSE(inf_pt.scored);
  EXPECT_EQ(inf_pt.index, 2u);
  EXPECT_EQ(detector.buffered(), 1u);      // only the finite point
  EXPECT_EQ(detector.total_appended(), 3u);
}

TEST(StreamDetectorTest, ForceRefitNeedsFullWindow) {
  auto opt = SmallOptions();
  opt.refit_interval = 100000;  // keep the automatic refit out of the way
  StreamDetector detector(opt);
  for (size_t i = 0; i + 1 < opt.ensemble.window_length; ++i) {
    detector.Append(static_cast<double>(i % 7));
  }
  EXPECT_EQ(detector.ForceRefit().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(detector.fitted());

  const auto series = TestSeries(opt.ensemble.window_length);
  for (const double v : series) detector.Append(v);
  EXPECT_TRUE(detector.ForceRefit().ok());
  EXPECT_TRUE(detector.fitted());
  EXPECT_EQ(detector.refit_count(), 1u);
  EXPECT_EQ(detector.appends_since_refit(), 0u);
  EXPECT_TRUE(detector.last_refit_status().ok());
}

TEST(StreamDetectorTest, DeterministicAcrossInstances) {
  const auto opt = SmallOptions();
  StreamDetector a(opt);
  StreamDetector b(opt);
  const auto series = TestSeries(300, /*seed=*/5);
  for (const double v : series) {
    const ScoredPoint pa = a.Append(v);
    const ScoredPoint pb = b.Append(v);
    ASSERT_EQ(pa.index, pb.index);
    ASSERT_EQ(pa.score, pb.score);
    ASSERT_EQ(pa.scored, pb.scored);
    ASSERT_EQ(pa.provisional, pb.provisional);
    ASSERT_EQ(pa.refit, pb.refit);
  }
}

TEST(StreamDetectorTest, IngestMatchesPointwiseAppend) {
  const auto opt = SmallOptions();
  StreamDetector a(opt);
  StreamDetector b(opt);
  const auto series = TestSeries(150);

  const auto batch = a.Ingest(series);
  ASSERT_EQ(batch.size(), series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    const ScoredPoint pt = b.Append(series[i]);
    EXPECT_EQ(batch[i].score, pt.score);
    EXPECT_EQ(batch[i].scored, pt.scored);
    EXPECT_EQ(batch[i].refit, pt.refit);
  }
}

TEST(StreamDetectorTest, KeptMembersDriveTheProvisionalModel) {
  const auto opt = SmallOptions();
  StreamDetector detector(opt);
  const auto series = TestSeries(128);
  detector.Ingest(series);
  ASSERT_TRUE(detector.fitted());
  size_t kept = 0;
  for (const auto& m : detector.last_ensemble().members) kept += m.kept;
  EXPECT_GT(kept, 0u);
  EXPECT_LT(kept, detector.last_ensemble().members.size());
}

}  // namespace
}  // namespace egi::stream
