#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "datasets/physio.h"
#include "datasets/planted.h"
#include "datasets/power.h"
#include "datasets/random_walk.h"
#include "datasets/shapes.h"
#include "datasets/ucr_like.h"
#include "ts/stats.h"
#include "util/rng.h"

namespace egi::datasets {
namespace {

double L2(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

// ------------------------------------------------------------------ shapes

TEST(ShapesTest, GaussianBumpPeaksAtCenter) {
  std::vector<double> v(21, 0.0);
  AddGaussianBump(v, 10.0, 2.0, 1.0);
  EXPECT_NEAR(v[10], 1.0, 1e-9);
  EXPECT_GT(v[10], v[8]);
  EXPECT_GT(v[8], v[5]);
  EXPECT_NEAR(v[0], 0.0, 1e-6);  // beyond 4 widths
}

TEST(ShapesTest, SineHasRequestedPeriod) {
  std::vector<double> v(100, 0.0);
  AddSine(v, 0, 100, 20.0, 0.0, 1.0);
  EXPECT_NEAR(v[0], 0.0, 1e-12);
  EXPECT_NEAR(v[5], 1.0, 1e-12);   // quarter period
  EXPECT_NEAR(v[10], 0.0, 1e-12);  // half period
}

TEST(ShapesTest, RampEndpoints) {
  std::vector<double> v(10, 0.0);
  AddRamp(v, 2, 8, 1.0, 4.0);
  EXPECT_DOUBLE_EQ(v[2], 1.0);
  EXPECT_DOUBLE_EQ(v[7], 4.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[8], 0.0);
}

TEST(ShapesTest, LevelAddsConstant) {
  std::vector<double> v(6, 1.0);
  AddLevel(v, 2, 4, 3.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 4.0);
  EXPECT_DOUBLE_EQ(v[3], 4.0);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
}

TEST(ShapesTest, SmoothStepApproachesAmplitude) {
  std::vector<double> v(100, 0.0);
  AddSmoothStep(v, 50.0, 3.0, 2.0);
  EXPECT_NEAR(v[0], 0.0, 1e-6);
  EXPECT_NEAR(v[99], 2.0, 1e-6);
  EXPECT_NEAR(v[50], 1.0, 1e-9);  // centre of the logistic
}

TEST(ShapesTest, DampedOscillationDecays) {
  std::vector<double> v(200, 0.0);
  AddDampedOscillation(v, 0, 10.0, 15.0, 1.0);
  double early = 0.0, late = 0.0;
  for (size_t i = 0; i < 20; ++i) early = std::max(early, std::abs(v[i]));
  for (size_t i = 100; i < 120; ++i) late = std::max(late, std::abs(v[i]));
  EXPECT_GT(early, 0.5);
  EXPECT_LT(late, 0.01);
}

TEST(ShapesTest, NoiseHasRequestedScale) {
  Rng rng(8);
  std::vector<double> v(20000, 0.0);
  AddGaussianNoise(v, rng, 0.5);
  EXPECT_NEAR(ts::SampleStdDev(v), 0.5, 0.02);
  EXPECT_NEAR(ts::Mean(v), 0.0, 0.02);
}

// ---------------------------------------------------------------- UCR-like

class UcrFamilyTest : public ::testing::TestWithParam<UcrDataset> {};

TEST_P(UcrFamilyTest, InstanceLengthsMatchSpec) {
  const auto spec = GetDatasetSpec(GetParam());
  Rng rng(1);
  EXPECT_EQ(MakeInstance(GetParam(), false, rng).size(),
            spec.instance_length);
  EXPECT_EQ(MakeInstance(GetParam(), true, rng).size(), spec.instance_length);
}

TEST_P(UcrFamilyTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  EXPECT_EQ(MakeInstance(GetParam(), false, a),
            MakeInstance(GetParam(), false, b));
}

TEST_P(UcrFamilyTest, InstancesVaryAcrossDraws) {
  Rng rng(7);
  const auto x = MakeInstance(GetParam(), false, rng);
  const auto y = MakeInstance(GetParam(), false, rng);
  EXPECT_GT(L2(x, y), 0.0);
}

TEST_P(UcrFamilyTest, AnomalousClassIsStructurallyDifferent) {
  // The mean anomalous instance must differ from the mean normal instance
  // far more than normal instances differ among themselves.
  Rng rng(11);
  const size_t len = GetDatasetSpec(GetParam()).instance_length;
  const int reps = 10;
  std::vector<double> mean_normal(len, 0.0), mean_anom(len, 0.0);
  for (int r = 0; r < reps; ++r) {
    const auto n = MakeInstance(GetParam(), false, rng);
    const auto a = MakeInstance(GetParam(), true, rng);
    for (size_t i = 0; i < len; ++i) {
      mean_normal[i] += n[i] / reps;
      mean_anom[i] += a[i] / reps;
    }
  }
  const auto probe = MakeInstance(GetParam(), false, rng);
  const double within = L2(probe, mean_normal);
  const double between = L2(mean_anom, mean_normal);
  EXPECT_GT(between, 1.5 * within)
      << "anomalous class not separable for "
      << GetDatasetSpec(GetParam()).name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, UcrFamilyTest, ::testing::ValuesIn(kAllDatasets),
    [](const ::testing::TestParamInfo<UcrDataset>& pi) {
      return std::string(GetDatasetSpec(pi.param).name);
    });

TEST(UcrSpecTest, Table3Properties) {
  EXPECT_EQ(GetDatasetSpec(UcrDataset::kTwoLeadEcg).instance_length, 82u);
  EXPECT_EQ(GetDatasetSpec(UcrDataset::kEcgFiveDays).instance_length, 132u);
  EXPECT_EQ(GetDatasetSpec(UcrDataset::kGunPoint).instance_length, 150u);
  EXPECT_EQ(GetDatasetSpec(UcrDataset::kWafer).instance_length, 150u);
  EXPECT_EQ(GetDatasetSpec(UcrDataset::kTrace).instance_length, 275u);
  EXPECT_EQ(GetDatasetSpec(UcrDataset::kStarLightCurve).instance_length,
            1024u);
}

// ----------------------------------------------------------------- planted

TEST(PlantedSeriesTest, LengthAndAnomalyWindow) {
  Rng rng(3);
  const auto s = MakePlantedSeries(UcrDataset::kGunPoint, rng);
  const size_t L = 150;
  EXPECT_EQ(s.values.size(), 21 * L);
  EXPECT_EQ(s.anomaly.length, L);
  const double frac = static_cast<double>(s.anomaly.start) /
                      static_cast<double>(s.values.size());
  EXPECT_GE(frac, 0.4);
  EXPECT_LE(frac, 0.8);
}

TEST(PlantedSeriesTest, AnomalyPositionVariesAcrossSeeds) {
  std::vector<size_t> starts;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    starts.push_back(MakePlantedSeries(UcrDataset::kWafer, rng).anomaly.start);
  }
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
  EXPECT_GT(starts.size(), 2u);
}

TEST(PlantedSeriesTest, AnomalyContentMatchesAnAnomalousInstance) {
  // The spliced window must carry anomalous-class content: its distance to
  // the mean normal instance must be large (arbitrary-position planting
  // still inserts one whole anomalous instance).
  Rng rng(9);
  const auto s = MakePlantedSeries(UcrDataset::kTrace, rng);
  std::vector<double> planted(
      s.values.begin() + static_cast<ptrdiff_t>(s.anomaly.start),
      s.values.begin() + static_cast<ptrdiff_t>(s.anomaly.end()));

  Rng rng2(123);
  const size_t len = 275;
  std::vector<double> mean_normal(len, 0.0);
  for (int r = 0; r < 10; ++r) {
    const auto inst = MakeInstance(UcrDataset::kTrace, false, rng2);
    for (size_t i = 0; i < len; ++i) mean_normal[i] += inst[i] / 10.0;
  }
  const auto probe = MakeInstance(UcrDataset::kTrace, false, rng2);
  EXPECT_GT(L2(planted, mean_normal), 1.5 * L2(probe, mean_normal));
}

TEST(MultiPlantedSeriesTest, CountsAndNonAdjacency) {
  Rng rng(5);
  const auto s =
      MakeMultiPlantedSeries(UcrDataset::kStarLightCurve, rng, 42, 2);
  EXPECT_EQ(s.values.size(), 43008u);  // the paper's Section 7.5 length
  ASSERT_EQ(s.anomalies.size(), 2u);
  const size_t gap = s.anomalies[1].start - s.anomalies[0].start;
  EXPECT_GE(gap, 2 * 1024u);  // non-adjacent slots
}

// ------------------------------------------------------------------- power

TEST(PowerTest, FridgeSeriesHasRequestedLengthAndAnomalies) {
  Rng rng(2);
  const auto s = MakeFridgeFreezerSeries(30000, rng);
  // Whole-cycle trimming: at most one cycle shorter than requested.
  EXPECT_LE(s.values.size(), 30000u);
  EXPECT_GE(s.values.size(), 30000u - 2 * kFridgeCycleLength);
  ASSERT_EQ(s.anomalies.size(), 2u);
  EXPECT_LT(s.anomalies[0].start, s.anomalies[1].start);
  for (double v : s.values) EXPECT_GE(v, 0.0);
}

TEST(PowerTest, FridgeWithoutAnomalies) {
  Rng rng(2);
  const auto s = MakeFridgeFreezerSeries(20000, rng, false);
  EXPECT_TRUE(s.anomalies.empty());
}

TEST(PowerTest, FridgeHasDutyCycleStructure) {
  Rng rng(4);
  const auto s = MakeFridgeFreezerSeries(20000, rng, false);
  // Power alternates between ~85W (ON) and ~1.5W (OFF): both populations
  // must be present in quantity.
  size_t high = 0, low = 0;
  for (double v : s.values) {
    if (v > 50.0) ++high;
    if (v < 10.0) ++low;
  }
  EXPECT_GT(high, s.values.size() / 5);
  EXPECT_GT(low, s.values.size() / 3);
}

TEST(PowerTest, DishwasherAnomalousCycleIsShorter) {
  Rng rng(6);
  const auto s = MakeDishwasherSeries(11, rng);
  ASSERT_EQ(s.anomalies.size(), 1u);
  // The anomalous cycle is missing ~45 samples of wash phase.
  EXPECT_LT(s.anomalies[0].length, kDishwasherCycleLength);
  EXPECT_GT(s.values.size(), 10 * (kDishwasherCycleLength - 60));
}

// ------------------------------------------------------------------ physio

TEST(PhysioTest, EcgHasBeatsAtExpectedRate) {
  Rng rng(7);
  const auto v = MakeLongEcg(10000, rng);
  EXPECT_EQ(v.size(), 10000u);
  // Count R peaks (well above the T waves at ~0.4).
  size_t peaks = 0;
  for (size_t i = 1; i + 1 < v.size(); ++i) {
    if (v[i] > 1.0 && v[i] >= v[i - 1] && v[i] > v[i + 1]) ++peaks;
  }
  EXPECT_NEAR(static_cast<double>(peaks), 10000.0 / 250.0, 8.0);
}

TEST(PhysioTest, EegIsZeroMeanOscillation) {
  Rng rng(8);
  const auto v = MakeEeg(20000, rng);
  EXPECT_EQ(v.size(), 20000u);
  EXPECT_NEAR(ts::Mean(v), 0.0, 0.3);
  EXPECT_GT(ts::SampleStdDev(v), 0.3);
}

// ------------------------------------------------------------- random walk

TEST(RandomWalkTest, StartsAtZeroAndScalesWithSigma) {
  Rng a(9), b(9);
  const auto w1 = MakeRandomWalk(5000, a, 1.0);
  const auto w2 = MakeRandomWalk(5000, b, 3.0);
  EXPECT_DOUBLE_EQ(w1[0], 0.0);
  // Same seed: the sigma-3 walk is exactly 3x the sigma-1 walk.
  for (size_t i = 0; i < w1.size(); i += 500) {
    EXPECT_NEAR(w2[i], 3.0 * w1[i], 1e-9);
  }
}

TEST(RandomWalkTest, IncrementsAreStandardNormal) {
  Rng rng(10);
  const auto w = MakeRandomWalk(50000, rng, 1.0);
  std::vector<double> inc(w.size() - 1);
  for (size_t i = 1; i < w.size(); ++i) inc[i - 1] = w[i] - w[i - 1];
  EXPECT_NEAR(ts::Mean(inc), 0.0, 0.02);
  EXPECT_NEAR(ts::SampleStdDev(inc), 1.0, 0.02);
}

}  // namespace
}  // namespace egi::datasets
