#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/gi.h"
#include "util/rng.h"

namespace egi::core {
namespace {

std::vector<double> NoisySine(size_t len, double period, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(len);
  for (size_t i = 0; i < len; ++i) {
    v[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / period) +
           0.05 * rng.Gaussian();
  }
  return v;
}

TEST(GiRunTest, DensityHasSeriesLength) {
  const auto series = NoisySine(700, 50.0, 1);
  GiParams p;
  p.window_length = 50;
  auto run = RunGrammarInduction(series, p);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->density.size(), series.size());
}

TEST(GiRunTest, StatsAreConsistent) {
  const auto series = NoisySine(900, 60.0, 2);
  GiParams p;
  p.window_length = 60;
  auto run = RunGrammarInduction(series, p);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->num_tokens, 0u);
  EXPECT_LE(run->vocabulary, run->num_tokens);
  // A compressing grammar never has more description symbols than input
  // tokens plus rule overhead.
  EXPECT_LE(run->grammar_symbols, run->num_tokens + 2 * run->num_rules);
}

TEST(GiRunTest, DeterministicPipeline) {
  const auto series = NoisySine(600, 40.0, 3);
  GiParams p;
  p.window_length = 40;
  auto a = RunGrammarInduction(series, p);
  auto b = RunGrammarInduction(series, p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->density, b->density);
  EXPECT_EQ(a->num_rules, b->num_rules);
}

TEST(GiRunTest, PeriodicDataHasHighCoverage) {
  const auto series = NoisySine(1000, 50.0, 4);
  GiParams p;
  p.window_length = 50;
  p.boundary_correction = false;
  auto run = RunGrammarInduction(series, p);
  ASSERT_TRUE(run.ok());
  // Interior points of a periodic series should be covered by rules.
  size_t covered = 0;
  for (size_t t = 100; t < 900; ++t) {
    if (run->density[t] > 0) ++covered;
  }
  EXPECT_GT(covered, 700u);
}

TEST(GiRunTest, BoundaryCorrectionLiftsEdges) {
  const auto series = NoisySine(800, 40.0, 5);
  GiParams p;
  p.window_length = 40;
  p.boundary_correction = false;
  auto raw = RunGrammarInduction(series, p);
  p.boundary_correction = true;
  auto corrected = RunGrammarInduction(series, p);
  ASSERT_TRUE(raw.ok() && corrected.ok());
  // Interior scaling is uniform (1/n); near the edges the corrected curve
  // must be relatively higher than the raw one whenever coverage exists.
  const size_t n = 40;
  const double interior_raw = raw->density[400];
  const double interior_cor = corrected->density[400];
  ASSERT_GT(interior_raw, 0.0);
  EXPECT_NEAR(interior_cor, interior_raw / static_cast<double>(n), 1e-9);
  // At point 5 only 6 windows provide coverage.
  if (raw->density[5] > 0.0) {
    EXPECT_NEAR(corrected->density[5], raw->density[5] / 6.0, 1e-9);
  }
}

TEST(GiRunTest, NumerosityReductionShrinksTokenCount) {
  const auto series = NoisySine(1200, 80.0, 6);
  GiParams p;
  p.window_length = 80;
  p.numerosity_reduction = true;
  auto with_nr = RunGrammarInduction(series, p);
  p.numerosity_reduction = false;
  auto without_nr = RunGrammarInduction(series, p);
  ASSERT_TRUE(with_nr.ok() && without_nr.ok());
  EXPECT_LT(with_nr->num_tokens, without_nr->num_tokens);
  EXPECT_EQ(without_nr->num_tokens, series.size() - 80 + 1);
}

TEST(GiRunTest, InvalidParamsRejected) {
  const auto series = NoisySine(100, 20.0, 7);
  GiParams p;
  p.window_length = 0;
  EXPECT_FALSE(RunGrammarInduction(series, p).ok());
  p.window_length = 101;
  EXPECT_FALSE(RunGrammarInduction(series, p).ok());
  p.window_length = 20;
  p.alphabet_size = 1;
  EXPECT_FALSE(RunGrammarInduction(series, p).ok());
  p.alphabet_size = 4;
  p.paa_size = 0;
  EXPECT_FALSE(RunGrammarInduction(series, p).ok());
}

// Density is non-negative and zero exactly where no rule instance covers.
class GiDensityPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GiDensityPropertyTest, NonNegativeAndBounded) {
  const auto [w, a] = GetParam();
  const auto series = NoisySine(1500, 75.0, static_cast<uint64_t>(w * 100 + a));
  GiParams p;
  p.window_length = 75;
  p.paa_size = w;
  p.alphabet_size = a;
  p.boundary_correction = false;
  auto run = RunGrammarInduction(series, p);
  ASSERT_TRUE(run.ok());
  for (double d : run->density) {
    EXPECT_GE(d, 0.0);
    // A point can be covered by at most (rule instances) <= tokens.
    EXPECT_LE(d, static_cast<double>(run->num_tokens));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, GiDensityPropertyTest,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(2, 4, 8)));

}  // namespace
}  // namespace egi::core
