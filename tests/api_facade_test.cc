// Façade-vs-direct equality: everything the public Session front door
// returns must be bitwise-identical to driving the internal layers
// directly — batch density curves, detections, streaming scores, and
// checkpoint blobs — at 1 and 4 threads (the acceptance bar of the
// public-API redesign).

#include <bit>
#include <cstdint>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/ensemble.h"
#include "core/gi.h"
#include "datasets/planted.h"
#include "egi/egi.h"
#include "stream/detector.h"
#include "stream/engine.h"
#include "util/rng.h"

namespace egi {
namespace {

constexpr size_t kWindow = 82;

const std::vector<double>& TestSeries() {
  static const std::vector<double> series = [] {
    Rng rng(7);
    return datasets::MakePlantedSeries(datasets::UcrDataset::kTwoLeadEcg, rng)
        .values;
  }();
  return series;
}

// Bitwise double equality (NaN patterns included).
bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

void ExpectSameCurve(const std::vector<double>& facade,
                     const std::vector<double>& direct) {
  ASSERT_EQ(facade.size(), direct.size());
  for (size_t i = 0; i < facade.size(); ++i) {
    ASSERT_TRUE(SameBits(facade[i], direct[i])) << "index " << i;
  }
}

core::EnsembleParams DirectEnsembleParams(int threads) {
  core::EnsembleParams p;
  p.wmax = 10;
  p.amax = 10;
  p.ensemble_size = 10;
  p.selectivity = 0.4;
  p.seed = 42;
  p.parallelism = exec::Parallelism::Fixed(threads);
  return p;
}

std::string EnsembleSpec(int threads) {
  return "ensemble:wmax=10,amax=10,n=10,tau=0.4,seed=42,threads=" +
         std::to_string(threads);
}

class FacadeEquivalenceTest : public ::testing::TestWithParam<int> {};

// ------------------------------------------------------------------- batch

TEST_P(FacadeEquivalenceTest, BatchDensityMatchesDirect) {
  const int threads = GetParam();
  auto session = Session::Open(EnsembleSpec(threads));
  ASSERT_TRUE(session.ok());
  auto facade = session->Score(TestSeries(), kWindow);
  ASSERT_TRUE(facade.ok());

  core::EnsembleParams p = DirectEnsembleParams(threads);
  p.window_length = kWindow;
  auto direct = core::ComputeEnsembleDensity(TestSeries(), p);
  ASSERT_TRUE(direct.ok());
  ExpectSameCurve(*facade, direct->density);
}

TEST_P(FacadeEquivalenceTest, DetectMatchesDirect) {
  const int threads = GetParam();
  auto session = Session::Open(EnsembleSpec(threads));
  ASSERT_TRUE(session.ok());
  auto facade = session->Detect(TestSeries(), kWindow, 3);
  ASSERT_TRUE(facade.ok());

  core::EnsembleGiDetector detector(DirectEnsembleParams(threads));
  auto direct = detector.Detect(TestSeries(), kWindow, 3);
  ASSERT_TRUE(direct.ok());

  ASSERT_EQ(facade->size(), direct->size());
  for (size_t i = 0; i < facade->size(); ++i) {
    EXPECT_EQ((*facade)[i].position, (*direct)[i].position);
    EXPECT_EQ((*facade)[i].length, (*direct)[i].length);
    EXPECT_TRUE(SameBits((*facade)[i].severity, (*direct)[i].severity));
    EXPECT_EQ((*facade)[i].run_length, (*direct)[i].run_length);
  }
}

TEST(FacadeTest, GiFixScoreMatchesDirect) {
  auto session = Session::Open("gi-fix:w=5,a=4");
  ASSERT_TRUE(session.ok());
  auto facade = session->Score(TestSeries(), kWindow);
  ASSERT_TRUE(facade.ok());

  core::GiParams p;
  p.window_length = kWindow;
  p.paa_size = 5;
  p.alphabet_size = 4;
  auto direct = core::RunGrammarInduction(TestSeries(), p);
  ASSERT_TRUE(direct.ok());
  ExpectSameCurve(*facade, direct->density);
}

// --------------------------------------------------------------- streaming

stream::StreamDetectorOptions DirectStreamOptions(int threads) {
  stream::StreamDetectorOptions options;
  options.ensemble = DirectEnsembleParams(threads);
  options.ensemble.window_length = kWindow;
  options.buffer_capacity = 512;
  options.refit_interval = 128;
  return options;
}

StreamOptions FacadeStreamOptions() {
  StreamOptions options;
  options.window_length = kWindow;
  options.buffer_capacity = 512;
  options.refit_interval = 128;
  return options;
}

void ExpectSamePoint(const StreamPoint& facade,
                     const stream::ScoredPoint& direct) {
  ASSERT_EQ(facade.index, direct.index);
  ASSERT_TRUE(SameBits(facade.value, direct.value));
  ASSERT_TRUE(SameBits(facade.score, direct.score)) << "index " << facade.index;
  ASSERT_EQ(facade.scored, direct.scored);
  ASSERT_EQ(facade.provisional, direct.provisional);
  ASSERT_EQ(facade.refit, direct.refit);
}

TEST_P(FacadeEquivalenceTest, StreamingScoresMatchDirect) {
  const int threads = GetParam();
  auto session = Session::Open(EnsembleSpec(threads));
  ASSERT_TRUE(session.ok());
  auto facade = session->OpenStream(FacadeStreamOptions());
  ASSERT_TRUE(facade.ok());

  stream::StreamDetector direct(DirectStreamOptions(threads));
  for (const double v : TestSeries()) {
    ExpectSamePoint(facade->Append(v), direct.Append(v));
  }
  EXPECT_EQ(facade->refit_count(), direct.refit_count());
  ExpectSameCurve(facade->ScoresSnapshot(), direct.ScoresSnapshot());
  ExpectSameCurve(facade->BufferSnapshot(), direct.BufferSnapshot());
}

TEST_P(FacadeEquivalenceTest, CheckpointRoundTripMatchesDirect) {
  const int threads = GetParam();
  const auto& series = TestSeries();
  const size_t half = series.size() / 2;

  auto session = Session::Open(EnsembleSpec(threads));
  ASSERT_TRUE(session.ok());
  auto facade = session->OpenStream(FacadeStreamOptions());
  ASSERT_TRUE(facade.ok());
  stream::StreamDetector direct(DirectStreamOptions(threads));
  for (size_t i = 0; i < half; ++i) {
    facade->Append(series[i]);
    direct.Append(series[i]);
  }

  // Same state -> byte-identical checkpoint blobs.
  const std::vector<uint8_t> facade_blob = facade->Checkpoint();
  const std::vector<uint8_t> direct_blob = direct.Serialize();
  ASSERT_EQ(facade_blob, direct_blob);

  // Restored façade stream continues bitwise-identically to the restored
  // direct detector (and to the uninterrupted runs, by transitivity with
  // the PR 4 continuation tests).
  auto restored = StreamSession::Restore(facade_blob);
  ASSERT_TRUE(restored.ok());
  auto direct_restored = stream::StreamDetector::Deserialize(direct_blob);
  ASSERT_TRUE(direct_restored.ok());
  for (size_t i = half; i < series.size(); ++i) {
    ExpectSamePoint(restored->Append(series[i]),
                    direct_restored->Append(series[i]));
  }
  // Re-checkpointing both continuations agrees too.
  EXPECT_EQ(restored->Checkpoint(), direct_restored->Serialize());
}

TEST_P(FacadeEquivalenceTest, HubMatchesEngine) {
  const int threads = GetParam();
  const auto& series = TestSeries();
  const auto feed = std::span<const double>(series).first(series.size() / 2);

  auto session = Session::Open(EnsembleSpec(threads));
  ASSERT_TRUE(session.ok());
  auto hub = session->OpenHub(FacadeStreamOptions());
  ASSERT_TRUE(hub.ok());

  stream::StreamEngineOptions engine_options;
  engine_options.detector = DirectStreamOptions(threads);
  engine_options.parallelism = exec::Parallelism::Fixed(threads);
  stream::StreamEngine engine(engine_options);

  for (int s = 0; s < 3; ++s) {
    hub->AddStream();
    engine.AddStream();
  }
  std::vector<HubBatch> hub_batches;
  std::vector<stream::StreamBatch> engine_batches;
  for (size_t s = 0; s < 3; ++s) {
    hub_batches.push_back(HubBatch{s, feed});
    engine_batches.push_back(stream::StreamBatch{s, feed});
  }
  hub->Ingest(hub_batches);
  engine.Ingest(engine_batches);

  EXPECT_EQ(hub->num_streams(), engine.num_streams());
  EXPECT_EQ(hub->Checkpoint(), engine.SaveAll());

  // Per-stream continuation through the hub matches the engine.
  const auto rest = std::span<const double>(series).subspan(series.size() / 2);
  for (size_t s = 0; s < 3; ++s) {
    const auto facade_points = hub->Ingest(s, rest);
    const auto direct_points = engine.Ingest(s, rest);
    ASSERT_EQ(facade_points.size(), direct_points.size());
    for (size_t i = 0; i < facade_points.size(); ++i) {
      ExpectSamePoint(facade_points[i], direct_points[i]);
    }
  }
}

TEST(FacadeTest, HubRestoreRoundTrips) {
  auto session = Session::Open(EnsembleSpec(1));
  ASSERT_TRUE(session.ok());
  auto hub = session->OpenHub(FacadeStreamOptions());
  ASSERT_TRUE(hub.ok());
  hub->AddStream();
  hub->AddStream();
  const auto feed =
      std::span<const double>(TestSeries()).first(TestSeries().size() / 2);
  hub->Ingest(0, feed);
  hub->Ingest(1, feed);

  const auto blob = hub->Checkpoint();
  auto standby = session->OpenHub(FacadeStreamOptions());
  ASSERT_TRUE(standby.ok());
  ASSERT_TRUE(standby->Restore(blob).ok());
  EXPECT_EQ(standby->num_streams(), 2u);
  EXPECT_EQ(standby->Checkpoint(), blob);

  // Corruption is a clean Status error and leaves the hub untouched.
  auto corrupted = blob;
  corrupted[corrupted.size() / 2] ^= 0x01;
  EXPECT_FALSE(standby->Restore(corrupted).ok());
  EXPECT_EQ(standby->num_streams(), 2u);
}

// ------------------------------------------------------------- capabilities

TEST(FacadeTest, CapabilitiesAreEnforced) {
  const auto& series = TestSeries();
  for (const char* method : {"discord", "gi-random"}) {
    auto session = Session::Open(method);
    ASSERT_TRUE(session.ok()) << method;
    EXPECT_FALSE(session->info().supports_score) << method;
    const auto score = session->Score(series, kWindow);
    ASSERT_FALSE(score.ok()) << method;
    EXPECT_EQ(score.status().code(), StatusCode::kFailedPrecondition);
  }
  for (const char* method : {"discord", "gi-fix", "gi-random", "gi-select"}) {
    auto session = Session::Open(method);
    ASSERT_TRUE(session.ok()) << method;
    EXPECT_FALSE(session->info().supports_streaming) << method;
    const auto stream = session->OpenStream(FacadeStreamOptions());
    ASSERT_FALSE(stream.ok()) << method;
    EXPECT_EQ(stream.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_FALSE(session->OpenHub(FacadeStreamOptions()).ok()) << method;
  }
  // Invalid stream shapes surface the detector's Status validation.
  auto session = Session::Open("ensemble");
  ASSERT_TRUE(session.ok());
  StreamOptions bad;
  bad.window_length = 0;
  EXPECT_FALSE(session->OpenStream(bad).ok());
  bad = FacadeStreamOptions();
  bad.buffer_capacity = 10;  // < window_length
  EXPECT_FALSE(session->OpenStream(bad).ok());
}

// Every registered detector Detects through the façade on real data.
TEST(FacadeTest, EveryRegisteredDetectorDetects) {
  Rng rng(11);
  const auto data =
      datasets::MakePlantedSeries(datasets::UcrDataset::kWafer, rng);
  for (const auto& info : ListDetectors()) {
    auto session = Session::Open(info.name);
    ASSERT_TRUE(session.ok()) << info.name;
    auto result = session->Detect(data.values, 150, 3);
    ASSERT_TRUE(result.ok()) << info.name;
    EXPECT_FALSE(result->empty()) << info.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, FacadeEquivalenceTest,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace egi
