#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sax/fast_paa.h"
#include "sax/paa.h"
#include "ts/prefix_stats.h"
#include "ts/stats.h"
#include "util/rng.h"

namespace egi::sax {
namespace {

// -------------------------------------------------------------- naive PAA

TEST(PaaTest, EvenSplitAverages) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  auto out = PaaOf(v, 2);
  EXPECT_DOUBLE_EQ(out[0], 1.5);
  EXPECT_DOUBLE_EQ(out[1], 3.5);
}

TEST(PaaTest, WEqualsNIsIdentity) {
  std::vector<double> v{1.0, -2.0, 3.0, 0.5};
  auto out = PaaOf(v, 4);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(out[i], v[i]);
}

TEST(PaaTest, WEqualsOneIsMean) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  auto out = PaaOf(v, 1);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
}

TEST(PaaTest, FractionalBoundariesExact) {
  // n=3, w=2: segments [0,1.5) and [1.5,3).
  std::vector<double> v{1.0, 2.0, 3.0};
  auto out = PaaOf(v, 2);
  EXPECT_NEAR(out[0], (1.0 + 0.5 * 2.0) / 1.5, 1e-12);
  EXPECT_NEAR(out[1], (0.5 * 2.0 + 3.0) / 1.5, 1e-12);
}

TEST(PaaTest, MeanIsPreserved) {
  // PAA with equal-width segments preserves the mean exactly.
  Rng rng(5);
  std::vector<double> v(97);
  for (auto& x : v) x = rng.Gaussian();
  for (int w : {1, 2, 3, 5, 7, 10, 97}) {
    auto out = PaaOf(v, w);
    EXPECT_NEAR(ts::Mean(out), ts::Mean(v), 1e-10) << "w=" << w;
  }
}

TEST(ZNormalizedPaaTest, FlatWindowAllZeros) {
  std::vector<double> v(20, 2.5);
  std::vector<double> out(4);
  ZNormalizedPaa(v, 4, out);
  for (double x : out) EXPECT_DOUBLE_EQ(x, 0.0);
}

// --------------------------------------------------------------- Fast PAA

TEST(FastPaaTest, MatchesNaiveOnSimpleWindow) {
  std::vector<double> series{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  ts::PrefixStats stats(series);
  FastPaa fast(&stats);

  std::vector<double> got(2), want(2);
  fast.Compute(2, 4, 2, got);
  ZNormalizedPaa(std::span<const double>(series).subspan(2, 4), 2, want);
  EXPECT_NEAR(got[0], want[0], 1e-10);
  EXPECT_NEAR(got[1], want[1], 1e-10);
}

TEST(FastPaaTest, FlatWindowAllZeros) {
  std::vector<double> series(50, 7.0);
  ts::PrefixStats stats(series);
  FastPaa fast(&stats);
  std::vector<double> out(5);
  fast.Compute(10, 20, 5, out);
  for (double x : out) EXPECT_DOUBLE_EQ(x, 0.0);
}

// Property sweep: FastPaa (Algorithm 2) equals the z-normalize-then-PAA
// reference for every (n, w) combination on random series.
class FastPaaEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FastPaaEquivalenceTest, MatchesReference) {
  const auto [n, w] = GetParam();
  if (w > n) GTEST_SKIP() << "w > n not applicable";

  Rng rng(static_cast<uint64_t>(n) * 1000 + static_cast<uint64_t>(w));
  std::vector<double> series(300);
  for (auto& x : series) x = rng.Gaussian(10.0, 4.0);

  ts::PrefixStats stats(series);
  FastPaa fast(&stats);
  std::vector<double> got(static_cast<size_t>(w));
  std::vector<double> want(static_cast<size_t>(w));

  for (size_t start = 0; start + static_cast<size_t>(n) <= series.size();
       start += 7) {
    fast.Compute(start, static_cast<size_t>(n), w, got);
    ZNormalizedPaa(
        std::span<const double>(series).subspan(start, static_cast<size_t>(n)),
        w, want);
    for (int i = 0; i < w; ++i) {
      EXPECT_NEAR(got[static_cast<size_t>(i)], want[static_cast<size_t>(i)],
                  1e-7)
          << "start=" << start << " n=" << n << " w=" << w << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FastPaaEquivalenceTest,
    ::testing::Combine(::testing::Values(8, 13, 20, 50, 82, 150),
                       ::testing::Values(2, 3, 4, 5, 7, 10, 13, 20)));

}  // namespace
}  // namespace egi::sax
