#include <gtest/gtest.h>

#include <vector>

#include "core/detector.h"
#include "datasets/planted.h"
#include "datasets/power.h"
#include "eval/metrics.h"
#include "ts/window.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace egi {
namespace {

// End-to-end: the ensemble detector locates planted anomalies across all six
// dataset families with a useful hit rate (the paper's Table 5 reports 0.68+
// everywhere; we assert a conservative floor to stay robust to seeds).
class EndToEndFamilyTest
    : public ::testing::TestWithParam<datasets::UcrDataset> {};

TEST_P(EndToEndFamilyTest, EnsembleHitsPlantedAnomalies) {
  const auto dataset = GetParam();
  const size_t window = datasets::GetDatasetSpec(dataset).instance_length;
  const int series_count = 4;

  core::EnsembleParams p;
  p.ensemble_size = 25;
  p.seed = 42;
  core::EnsembleGiDetector detector(p);

  int hits = 0;
  for (int i = 0; i < series_count; ++i) {
    Rng rng(1000 + static_cast<uint64_t>(i));
    const auto s = datasets::MakePlantedSeries(dataset, rng);
    auto r = detector.Detect(s.values, window, 3);
    ASSERT_TRUE(r.ok()) << r.status();
    if (eval::IsHit(*r, s.anomaly)) ++hits;
  }
  EXPECT_GE(hits, series_count / 2)
      << datasets::GetDatasetSpec(dataset).name << ": only " << hits << "/"
      << series_count << " hits";
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, EndToEndFamilyTest,
    ::testing::ValuesIn(datasets::kAllDatasets),
    [](const ::testing::TestParamInfo<datasets::UcrDataset>& pi) {
      return std::string(datasets::GetDatasetSpec(pi.param).name);
    });

TEST(EndToEndTest, EnsembleBeatsSingleRandomRun) {
  // The paper's core claim: combining many random (w, a) draws beats a
  // single random draw. Aggregated over two parameter-sensitive families so
  // the comparison is statistically stable.
  const datasets::UcrDataset families[] = {
      datasets::UcrDataset::kGunPoint, datasets::UcrDataset::kStarLightCurve};

  core::EnsembleParams p;
  p.ensemble_size = 30;
  core::EnsembleGiDetector ensemble(p);
  core::RandomGiDetector random_gi(10, 10, 99);

  double ensemble_total = 0.0, random_total = 0.0;
  for (const auto dataset : families) {
    const size_t window = datasets::GetDatasetSpec(dataset).instance_length;
    for (int i = 0; i < 6; ++i) {
      Rng rng(7000 + static_cast<uint64_t>(i));
      const auto s = datasets::MakePlantedSeries(dataset, rng);
      auto re = ensemble.Detect(s.values, window, 3);
      ASSERT_TRUE(re.ok());
      ensemble_total += eval::BestScore(*re, s.anomaly);
      // A single random draw has huge variance; compare against its
      // expectation (mean of several independent draws per series).
      double series_random = 0.0;
      const int draws = 5;
      for (int d = 0; d < draws; ++d) {
        auto rr = random_gi.Detect(s.values, window, 3);
        ASSERT_TRUE(rr.ok());
        series_random += eval::BestScore(*rr, s.anomaly);
      }
      random_total += series_random / draws;
    }
  }
  EXPECT_GT(ensemble_total, random_total);
}

TEST(EndToEndTest, CaseStudyFindsUnusualFridgeCycles) {
  // Section 7.4 in miniature: a long fridge-freezer stream with two planted
  // unusual events; the ensemble's top-2 must overlap both.
  Rng rng(12);
  const auto s = datasets::MakeFridgeFreezerSeries(60000, rng);
  ASSERT_EQ(s.anomalies.size(), 2u);

  core::EnsembleParams p;
  p.ensemble_size = 25;
  core::EnsembleGiDetector detector(p);
  auto r = detector.Detect(s.values, datasets::kFridgeCycleLength, 2);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->size(), 2u);

  int found = 0;
  for (const auto& gt : s.anomalies) {
    for (const auto& c : *r) {
      if (ts::Overlaps(c.window(), gt)) {
        ++found;
        break;
      }
    }
  }
  EXPECT_EQ(found, 2) << "expected both unusual events in the top-2";
}

TEST(EndToEndTest, MultipleAnomaliesDetected) {
  // Section 7.5 in miniature: two planted anomalies, top-3 candidates.
  Rng rng(21);
  const auto s = datasets::MakeMultiPlantedSeries(
      datasets::UcrDataset::kStarLightCurve, rng, 20, 2);

  core::EnsembleParams p;
  p.ensemble_size = 25;
  core::EnsembleGiDetector detector(p);
  auto r = detector.Detect(s.values, 1024, 3);
  ASSERT_TRUE(r.ok()) << r.status();

  int found = 0;
  for (const auto& gt : s.anomalies) {
    for (const auto& c : *r) {
      if (ts::Overlaps(c.window(), gt)) {
        ++found;
        break;
      }
    }
  }
  EXPECT_GE(found, 1);
}

TEST(EndToEndTest, EnsembleScalesRoughlyLinearly) {
  // Runtime sanity (not a benchmark): doubling the series length must not
  // blow up superlinearly. Generous factor bound to stay CI-safe.
  core::EnsembleParams p;
  p.ensemble_size = 10;
  core::EnsembleGiDetector detector(p);

  auto time_for = [&](size_t len) {
    Rng rng(5);
    const auto s = datasets::MakeFridgeFreezerSeries(len, rng, false);
    Stopwatch sw;
    auto r = detector.Detect(s.values, 900, 3);
    EXPECT_TRUE(r.ok());
    return sw.ElapsedSeconds();
  };
  // Warm up allocator caches before measuring.
  (void)time_for(10000);
  const double t1 = time_for(20000);
  const double t2 = time_for(80000);
  EXPECT_LT(t2, 16.0 * std::max(t1, 0.005))
      << "4x the data took " << t2 / t1 << "x the time";
}

}  // namespace
}  // namespace egi
