#include <gtest/gtest.h>

#include <vector>

#include "grammar/density.h"
#include "grammar/grammar.h"
#include "grammar/sequitur.h"

namespace egi::grammar {
namespace {

std::vector<size_t> IdentityOffsets(size_t n) {
  std::vector<size_t> off(n);
  for (size_t i = 0; i < n; ++i) off[i] = i;
  return off;
}

TEST(DensityTest, AnomalousTokenHasZeroCoverage) {
  // Paper Section 3.2: S = aa,bb,cc,xx,aa,bb,cc -> xx is incompressible.
  const std::vector<int32_t> in{0, 1, 2, 3, 0, 1, 2};
  const auto g = InduceGrammar(in);
  const auto offsets = IdentityOffsets(in.size());
  const auto density =
      BuildRuleDensityCurve(g, offsets, in.size(), /*window_length=*/1);

  ASSERT_EQ(density.size(), in.size());
  // R1 -> aa bb cc covers [0,2] and [4,6]; xx at 3 is uncovered.
  EXPECT_EQ(density, (std::vector<double>{1, 1, 1, 0, 1, 1, 1}));
}

TEST(DensityTest, WindowLengthExtendsCoverage) {
  const std::vector<int32_t> in{0, 1, 2, 3, 0, 1, 2};
  const auto g = InduceGrammar(in);
  const auto offsets = IdentityOffsets(in.size());
  // Window of 2: each token's subsequence covers two time points, so the
  // rule instance at tokens [0,2] covers time [0, 2+2-1] = [0,3].
  const size_t series_len = in.size() + 1;  // positions + window - 1
  const auto density = BuildRuleDensityCurve(g, offsets, series_len, 2);
  ASSERT_EQ(density.size(), series_len);
  EXPECT_EQ(density, (std::vector<double>{1, 1, 1, 1, 1, 1, 1, 1}));
}

TEST(DensityTest, NestedRulesStackCoverage) {
  // abababab: R1 -> ab (4 instances), R2 -> R1 R1 (2 instances). Every
  // point is covered by one R1 instance and one R2 instance.
  const std::vector<int32_t> in{0, 1, 0, 1, 0, 1, 0, 1};
  const auto g = InduceGrammar(in);
  const auto offsets = IdentityOffsets(in.size());
  const auto density = BuildRuleDensityCurve(g, offsets, in.size(), 1);
  EXPECT_EQ(density, std::vector<double>(8, 2.0));
}

TEST(DensityTest, NoRulesMeansZeroCurve) {
  const std::vector<int32_t> in{0, 1, 2, 3};
  const auto g = InduceGrammar(in);
  const auto density =
      BuildRuleDensityCurve(g, IdentityOffsets(4), 4, 1);
  EXPECT_EQ(density, std::vector<double>(4, 0.0));
}

TEST(DensityTest, NumerosityOffsetsMapBackToSeriesPositions) {
  // Two tokens at sparse offsets: a rule spanning tokens [0,1] covers the
  // series from offsets[0] through offsets[1] + window - 1.
  Grammar g;
  g.input_length = 4;
  GrammarRule r;
  r.rhs = {0, 1};
  r.expansion_length = 2;
  r.usage = 2;
  r.occurrences = {0, 2};
  g.rules.push_back(r);
  g.root = {MakeRuleSym(0), MakeRuleSym(0)};

  const std::vector<size_t> offsets{0, 3, 10, 14};
  const size_t series_len = 20;
  const size_t window = 4;
  const auto density = BuildRuleDensityCurve(g, offsets, series_len, window);

  // First instance: tokens 0..1 -> time [0, 3+4-1] = [0,6].
  for (size_t t = 0; t <= 6; ++t) EXPECT_EQ(density[t], 1.0) << t;
  for (size_t t = 7; t <= 9; ++t) EXPECT_EQ(density[t], 0.0) << t;
  // Second instance: tokens 2..3 -> time [10, 14+4-1] = [10,17].
  for (size_t t = 10; t <= 17; ++t) EXPECT_EQ(density[t], 1.0) << t;
  for (size_t t = 18; t < 20; ++t) EXPECT_EQ(density[t], 0.0) << t;
}

TEST(DensityTest, CoverageClampedAtSeriesEnd) {
  Grammar g;
  g.input_length = 2;
  GrammarRule r;
  r.rhs = {0, 0};
  r.expansion_length = 2;
  r.usage = 2;
  r.occurrences = {0};
  g.rules.push_back(r);
  g.root = {MakeRuleSym(0)};
  // usage bookkeeping is not validated here; this is a direct curve test.
  // Occurrence spans tokens [0,1] -> time [0, offsets[1] + window - 1] = 3,
  // clamped to the final point of the series.
  const std::vector<size_t> offsets{0, 1};
  const auto density = BuildRuleDensityCurve(g, offsets, 3, 3);
  EXPECT_EQ(density, (std::vector<double>{1, 1, 1}));
}

TEST(DensityTest, RejectsMismatchedOffsets) {
  const std::vector<int32_t> in{0, 1, 0, 1};
  const auto g = InduceGrammar(in);
  const std::vector<size_t> offsets{0, 1};  // wrong size
  EXPECT_DEATH(BuildRuleDensityCurve(g, offsets, 4, 1), "offsets");
}

}  // namespace
}  // namespace egi::grammar
