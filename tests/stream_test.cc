#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stream/ring_buffer.h"
#include "stream/rolling_stats.h"
#include "stream/stream_window.h"
#include "ts/prefix_stats.h"
#include "util/rng.h"

namespace egi::stream {
namespace {

// ------------------------------------------------------------- RingBuffer

TEST(RingBufferTest, FillsThenEvictsOldest) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  rb.PushBack(1);
  rb.PushBack(2);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_FALSE(rb.full());
  rb.PushBack(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.front(), 1);
  rb.PushBack(4);  // evicts 1
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 2);
  EXPECT_EQ(rb.back(), 4);
  EXPECT_EQ(rb[0], 2);
  EXPECT_EQ(rb[1], 3);
  EXPECT_EQ(rb[2], 4);
}

TEST(RingBufferTest, SnapshotIsOldestFirstAcrossWrap) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 11; ++i) rb.PushBack(i);
  EXPECT_EQ(rb.Snapshot(), (std::vector<int>{7, 8, 9, 10}));
}

TEST(RingBufferTest, CopyLastTakesNewestInOrder) {
  RingBuffer<int> rb(5);
  for (int i = 0; i < 8; ++i) rb.PushBack(i);
  std::vector<int> out(3);
  rb.CopyLast(3, out);
  EXPECT_EQ(out, (std::vector<int>{5, 6, 7}));
}

TEST(RingBufferTest, AssignOverwritesLogicalOrder) {
  RingBuffer<int> rb(3);
  for (int i = 0; i < 5; ++i) rb.PushBack(i);  // holds {2, 3, 4}
  const std::vector<int> replacement{7, 8, 9};
  rb.Assign(replacement);
  EXPECT_EQ(rb.Snapshot(), replacement);
  rb.PushBack(10);
  EXPECT_EQ(rb.Snapshot(), (std::vector<int>{8, 9, 10}));
}

TEST(RingBufferTest, ClearEmpties) {
  RingBuffer<int> rb(2);
  rb.PushBack(1);
  rb.Clear();
  EXPECT_TRUE(rb.empty());
  rb.PushBack(5);
  EXPECT_EQ(rb.front(), 5);
}

// ----------------------------------------------------------- RollingStats

TEST(RollingStatsTest, MatchesPrefixStatsOnSlidingWindows) {
  Rng rng(7);
  std::vector<double> series(512);
  for (double& v : series) v = rng.Gaussian(5.0, 2.0);
  const ts::PrefixStats ps(series);

  const size_t n = 64;
  RollingStats rs;
  for (size_t i = 0; i < series.size(); ++i) {
    if (i >= n) rs.Remove(series[i - n]);
    rs.Add(series[i]);
    const size_t start = i + 1 >= n ? i + 1 - n : 0;
    const size_t len = i + 1 - start;
    ASSERT_EQ(rs.count(), len);
    EXPECT_NEAR(rs.Mean(), ps.RangeMean(start, len), 1e-9);
    EXPECT_NEAR(rs.SampleStdDev(), ps.RangeStdDev(start, len), 1e-9);
  }
}

TEST(RollingStatsTest, EmptyAndSingletonAreZero) {
  RollingStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.SampleStdDev(), 0.0);
  rs.Add(3.5);
  EXPECT_DOUBLE_EQ(rs.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(rs.SampleStdDev(), 0.0);
  rs.Remove(3.5);
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.Sum(), 0.0);
}

TEST(RollingStatsTest, CompensationSurvivesLongRuns) {
  // 1e6 adds/removes of values around a 1e6 offset: a naive accumulator
  // drifts visibly; the compensated one stays near-exact.
  RollingStats rs;
  const size_t n = 128;
  std::vector<double> window;
  Rng rng(11);
  double expected_last_mean = 0.0;
  for (size_t i = 0; i < 1000000; ++i) {
    const double v = 1.0e6 + rng.UniformDouble(-1.0, 1.0);
    window.push_back(v);
    if (window.size() > n) {
      rs.Remove(window.front());
      window.erase(window.begin());
    }
    rs.Add(v);
  }
  double sum = 0.0;
  for (double v : window) sum += v;
  expected_last_mean = sum / static_cast<double>(window.size());
  EXPECT_NEAR(rs.Mean(), expected_last_mean, 1e-7);
}

// ------------------------------------------------------------ StreamWindow

TEST(StreamWindowTest, TracksTrailingWindowStats) {
  Rng rng(3);
  std::vector<double> series(300);
  for (double& v : series) v = rng.Gaussian();
  const ts::PrefixStats ps(series);

  const size_t capacity = 128, n = 32;
  StreamWindow w(capacity, n);
  EXPECT_FALSE(w.WindowReady());
  for (size_t i = 0; i < series.size(); ++i) {
    w.Append(series[i]);
    if (i + 1 >= n) {
      ASSERT_TRUE(w.WindowReady());
      EXPECT_NEAR(w.WindowMean(), ps.RangeMean(i + 1 - n, n), 1e-9);
      EXPECT_NEAR(w.WindowStdDev(), ps.RangeStdDev(i + 1 - n, n), 1e-9);
    }
  }
  EXPECT_EQ(w.size(), capacity);
  EXPECT_EQ(w.total_appended(), series.size());

  // Snapshot is the last `capacity` points; CopyWindow the last n.
  const auto snap = w.Snapshot();
  ASSERT_EQ(snap.size(), capacity);
  for (size_t i = 0; i < capacity; ++i) {
    EXPECT_EQ(snap[i], series[series.size() - capacity + i]);
  }
  std::vector<double> win(n);
  w.CopyWindow(win);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(win[i], series[series.size() - n + i]);
  }
}

TEST(StreamWindowTest, WindowStatsCorrectWhileFilling) {
  StreamWindow w(16, 4);
  w.Append(1.0);
  w.Append(3.0);
  EXPECT_DOUBLE_EQ(w.WindowMean(), 2.0);
  EXPECT_FALSE(w.WindowReady());
  w.Append(5.0);
  w.Append(7.0);
  EXPECT_TRUE(w.WindowReady());
  EXPECT_DOUBLE_EQ(w.WindowMean(), 4.0);
  w.Append(9.0);  // window is now {3, 5, 7, 9}
  EXPECT_DOUBLE_EQ(w.WindowMean(), 6.0);
}

}  // namespace
}  // namespace egi::stream
