// Short-read robustness for both wire formats (src/service): every
// incremental parser — ingest frames, response frames, HTTP requests, HTTP
// responses — must answer kNeedMore for every strict prefix and then decode
// the full buffer identically to a one-shot parse, regardless of how the
// kernel splits the bytes. Exercised byte-at-a-time (every prefix) and with
// seeded randomized split points, the way real TCP delivers them.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "service/frame.h"
#include "service/http.h"
#include "util/rng.h"

namespace egi::service {
namespace {

std::span<const uint8_t> Bytes(const std::vector<uint8_t>& v, size_t n) {
  return std::span<const uint8_t>(v.data(), n);
}

// ------------------------------------------------------------ ingest frames

TEST(PartialReadTest, IngestFrameByteAtATime) {
  const std::vector<double> values = {1.5, -2.25, 0.0, 1e300, -0.5};
  std::vector<uint8_t> wire;
  EncodeIngestFrame(1234567, values, &wire);

  IngestRequest out;
  size_t consumed = 0;
  for (size_t n = 0; n < wire.size(); ++n) {
    ASSERT_EQ(DecodeIngestFrame(Bytes(wire, n), &out, &consumed),
              FrameParseResult::kNeedMore)
        << "prefix of " << n << " bytes";
  }
  ASSERT_EQ(DecodeIngestFrame(wire, &out, &consumed),
            FrameParseResult::kComplete);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(out.stream, 1234567u);
  EXPECT_EQ(out.values, values);
  EXPECT_FALSE(out.hello);
}

TEST(PartialReadTest, HelloFrameByteAtATime) {
  std::vector<uint8_t> wire;
  EncodeHelloFrame(kProtocolVersion, &wire);
  IngestRequest out;
  size_t consumed = 0;
  for (size_t n = 0; n < wire.size(); ++n) {
    ASSERT_EQ(DecodeIngestFrame(Bytes(wire, n), &out, &consumed),
              FrameParseResult::kNeedMore);
  }
  ASSERT_EQ(DecodeIngestFrame(wire, &out, &consumed),
            FrameParseResult::kComplete);
  EXPECT_TRUE(out.hello);
  EXPECT_EQ(out.protocol_version, kProtocolVersion);
  EXPECT_TRUE(out.values.empty());
}

TEST(PartialReadTest, ResponseFramesByteAtATime) {
  std::vector<IngestResponse> responses(3);
  responses[0].type = FrameType::kAck;
  responses[0].stream = 9;
  responses[0].accepted_total = 100;
  responses[0].scored_total = 90;
  responses[0].last_score = 0.625;
  responses[0].last_scored = true;
  responses[1].type = FrameType::kReject;
  responses[1].stream = 9;
  responses[1].reason = RejectReason::kUnavailable;
  responses[2].type = FrameType::kHelloAck;
  responses[2].protocol_version = kProtocolVersion;

  for (const IngestResponse& expected : responses) {
    std::vector<uint8_t> wire;
    EncodeResponseFrame(expected, &wire);
    IngestResponse out;
    size_t consumed = 0;
    for (size_t n = 0; n < wire.size(); ++n) {
      ASSERT_EQ(DecodeResponseFrame(Bytes(wire, n), &out, &consumed),
                FrameParseResult::kNeedMore)
          << "type " << static_cast<int>(expected.type) << " prefix " << n;
    }
    ASSERT_EQ(DecodeResponseFrame(wire, &out, &consumed),
              FrameParseResult::kComplete);
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(out.type, expected.type);
    if (expected.type == FrameType::kAck) {
      EXPECT_EQ(out.accepted_total, expected.accepted_total);
      EXPECT_EQ(out.last_score, expected.last_score);
    }
    if (expected.type == FrameType::kReject) {
      EXPECT_EQ(out.reason, expected.reason);
    }
    if (expected.type == FrameType::kHelloAck) {
      EXPECT_EQ(out.protocol_version, expected.protocol_version);
    }
  }
}

TEST(PartialReadTest, PipelinedFramesWithRandomizedSplits) {
  // A realistic buffer: hello + several ingest frames back to back, fed to
  // the decoder in random-sized chunks; the decode loop (mirroring
  // server.cc's) must recover every frame exactly once.
  Rng value_rng(11);
  std::vector<uint8_t> wire;
  EncodeHelloFrame(kProtocolVersion, &wire);
  constexpr size_t kFrames = 17;
  std::vector<std::vector<double>> sent;
  for (size_t f = 0; f < kFrames; ++f) {
    std::vector<double> values(1 + f % 7);
    for (double& v : values) v = value_rng.UniformDouble();
    sent.push_back(values);
    EncodeIngestFrame(f, values, &wire);
  }

  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng split_rng(seed);
    std::vector<uint8_t> buffer;
    size_t fed = 0;
    size_t decoded = 0;
    bool saw_hello = false;
    IngestRequest out;
    while (decoded < kFrames || !saw_hello || fed < wire.size()) {
      if (fed < wire.size()) {
        const size_t chunk =
            1 + static_cast<size_t>(split_rng.UniformDouble() * 97.0);
        const size_t take = std::min(chunk, wire.size() - fed);
        buffer.insert(buffer.end(), wire.begin() + static_cast<ptrdiff_t>(fed),
                      wire.begin() + static_cast<ptrdiff_t>(fed + take));
        fed += take;
      }
      size_t offset = 0;
      size_t consumed = 0;
      while (DecodeIngestFrame(
                 std::span<const uint8_t>(buffer).subspan(offset), &out,
                 &consumed) == FrameParseResult::kComplete) {
        offset += consumed;
        if (out.hello) {
          EXPECT_FALSE(saw_hello);
          saw_hello = true;
        } else {
          ASSERT_LT(decoded, kFrames);
          EXPECT_EQ(out.stream, decoded);
          EXPECT_EQ(out.values, sent[decoded]);
          ++decoded;
        }
      }
      buffer.erase(buffer.begin(),
                   buffer.begin() + static_cast<ptrdiff_t>(offset));
    }
    EXPECT_EQ(decoded, kFrames) << "seed " << seed;
    EXPECT_TRUE(buffer.empty()) << "seed " << seed;
  }
}

// -------------------------------------------------------------------- HTTP

TEST(PartialReadTest, HttpRequestByteAtATime) {
  const std::string raw =
      "POST /v1/streams?tail=5 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 12\r\n"
      "\r\n"
      "{\"tenant\":1}";
  HttpRequest out;
  size_t consumed = 0;
  for (size_t n = 0; n < raw.size(); ++n) {
    ASSERT_EQ(ParseHttpRequest(std::string_view(raw).substr(0, n), &out,
                               &consumed),
              HttpParseResult::kNeedMore)
        << "prefix of " << n << " bytes";
  }
  ASSERT_EQ(ParseHttpRequest(raw, &out, &consumed),
            HttpParseResult::kComplete);
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(out.method, "POST");
  EXPECT_EQ(out.path, "/v1/streams");
  EXPECT_EQ(out.body, "{\"tenant\":1}");
}

TEST(PartialReadTest, HttpResponseByteAtATimeAndPipelined) {
  const std::string first = RenderHttpResponse(200, "{\"stream\":3}");
  const std::string second = RenderHttpResponse(409, "{\"error\":\"queued\"}");
  const std::string raw = first + second;

  HttpResponse out;
  size_t consumed = 0;
  for (size_t n = 0; n < first.size(); ++n) {
    ASSERT_EQ(ParseHttpResponse(std::string_view(raw).substr(0, n), &out,
                                &consumed),
              HttpParseResult::kNeedMore)
        << "prefix of " << n << " bytes";
  }
  ASSERT_EQ(ParseHttpResponse(raw, &out, &consumed),
            HttpParseResult::kComplete);
  EXPECT_EQ(consumed, first.size());  // the second response stays buffered
  EXPECT_EQ(out.status, 200);
  EXPECT_EQ(out.body, "{\"stream\":3}");
  ASSERT_EQ(ParseHttpResponse(std::string_view(raw).substr(consumed), &out,
                              &consumed),
            HttpParseResult::kComplete);
  EXPECT_EQ(out.status, 409);
  EXPECT_EQ(out.body, "{\"error\":\"queued\"}");

  // A response without Content-Length cannot be framed on a keep-alive
  // connection: malformed, not a hang.
  EXPECT_EQ(ParseHttpResponse("HTTP/1.1 200 OK\r\n\r\n", &out, &consumed),
            HttpParseResult::kMalformed);
  EXPECT_EQ(ParseHttpResponse("NOPE/1.1 200\r\n\r\n", &out, &consumed),
            HttpParseResult::kMalformed);
}

TEST(PartialReadTest, HttpRequestRandomizedSplits) {
  const std::string raw =
      "PUT /v1/streams/7/checkpoint HTTP/1.1\r\n"
      "Content-Type: application/octet-stream\r\n"
      "Content-Length: 300\r\n"
      "\r\n" +
      std::string(300, '\x7f');
  for (uint64_t seed = 100; seed < 120; ++seed) {
    Rng split_rng(seed);
    std::string buffer;
    size_t fed = 0;
    HttpRequest out;
    size_t consumed = 0;
    HttpParseResult parsed = HttpParseResult::kNeedMore;
    while (fed < raw.size()) {
      const size_t chunk =
          1 + static_cast<size_t>(split_rng.UniformDouble() * 63.0);
      const size_t take = std::min(chunk, raw.size() - fed);
      buffer.append(raw, fed, take);
      fed += take;
      parsed = ParseHttpRequest(buffer, &out, &consumed);
      if (fed < raw.size()) {
        ASSERT_EQ(parsed, HttpParseResult::kNeedMore) << "seed " << seed;
      }
    }
    ASSERT_EQ(parsed, HttpParseResult::kComplete) << "seed " << seed;
    EXPECT_EQ(consumed, raw.size());
    EXPECT_EQ(out.method, "PUT");
    EXPECT_EQ(out.path, "/v1/streams/7/checkpoint");
    EXPECT_EQ(out.body.size(), 300u);
  }
}

}  // namespace
}  // namespace egi::service
