#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "sax/token_table.h"
#include "sax/word_code.h"
#include "serialize/bytes.h"
#include "serialize/codecs.h"
#include "serialize/file_io.h"
#include "serialize/format.h"
#include "stream/rolling_stats.h"
#include "util/rng.h"

namespace egi::serialize {
namespace {

// ------------------------------------------------------------- primitives

TEST(ByteCodecTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutBool(true);
  w.PutBool(false);

  ByteReader r(w.bytes());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  bool b1 = false, b2 = true;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadBool(&b1).ok());
  ASSERT_TRUE(r.ReadBool(&b2).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(ByteCodecTest, VarintRoundTripEdgeValues) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            300,
                            16383,
                            16384,
                            (1ull << 32) - 1,
                            1ull << 32,
                            (1ull << 56) + 17,
                            std::numeric_limits<uint64_t>::max()};
  for (const uint64_t v : cases) {
    ByteWriter w;
    w.PutVarint(v);
    ByteReader r(w.bytes());
    uint64_t back = 1;
    ASSERT_TRUE(r.ReadVarint(&back).ok()) << v;
    EXPECT_EQ(back, v);
    EXPECT_TRUE(r.ExpectEnd().ok());
  }
}

TEST(ByteCodecTest, VarintRejectsTruncationAndOverflow) {
  // Truncated: continuation bit set but no next byte.
  {
    const uint8_t bytes[] = {0x80};
    ByteReader r(bytes);
    uint64_t v = 0;
    EXPECT_FALSE(r.ReadVarint(&v).ok());
  }
  // 11 continuation bytes: longer than any uint64_t encoding.
  {
    std::vector<uint8_t> bytes(11, 0x80);
    ByteReader r(bytes);
    uint64_t v = 0;
    EXPECT_FALSE(r.ReadVarint(&v).ok());
  }
  // 10 bytes whose last byte carries more than the 1 bit that fits.
  {
    std::vector<uint8_t> bytes(9, 0x80);
    bytes.push_back(0x02);
    ByteReader r(bytes);
    uint64_t v = 0;
    EXPECT_FALSE(r.ReadVarint(&v).ok());
  }
}

TEST(ByteCodecTest, TruncatedFixedReadsError) {
  const uint8_t bytes[] = {1, 2, 3};
  ByteReader r(bytes);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double d = 0;
  EXPECT_FALSE(r.ReadU32(&u32).ok());
  EXPECT_FALSE(r.ReadU64(&u64).ok());
  EXPECT_FALSE(r.ReadDouble(&d).ok());
  // Failed reads must not advance the cursor.
  EXPECT_EQ(r.remaining(), 3u);
  uint8_t u8 = 0;
  EXPECT_TRUE(r.ReadU8(&u8).ok());
  EXPECT_EQ(u8, 1);
}

TEST(ByteCodecTest, DoubleRoundTripIsBitwise) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.0 / 3.0,
                          5e-324,  // smallest denormal
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::quiet_NaN()};
  for (const double v : cases) {
    ByteWriter w;
    w.PutDouble(v);
    ByteReader r(w.bytes());
    double back = 0;
    ASSERT_TRUE(r.ReadDouble(&back).ok());
    EXPECT_EQ(std::bit_cast<uint64_t>(back), std::bit_cast<uint64_t>(v));
  }
}

TEST(ByteCodecTest, FiniteDoubleRejectsInfAndNaN) {
  const double bad[] = {std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::quiet_NaN()};
  for (const double v : bad) {
    ByteWriter w;
    w.PutDouble(v);
    ByteReader r(w.bytes());
    double back = 0;
    EXPECT_FALSE(r.ReadFiniteDouble(&back).ok());
    EXPECT_EQ(r.remaining(), 8u);  // cursor unchanged on rejection
  }
}

TEST(ByteCodecTest, BoolRejectsNonCanonicalBytes) {
  const uint8_t bytes[] = {2};
  ByteReader r(bytes);
  bool b = false;
  EXPECT_FALSE(r.ReadBool(&b).ok());
}

TEST(ByteCodecTest, StringRoundTripAndLimits) {
  ByteWriter w;
  w.PutString("hello snapshot");
  w.PutString("");
  {
    ByteReader r(w.bytes());
    std::string s;
    ASSERT_TRUE(r.ReadString(&s, 100).ok());
    EXPECT_EQ(s, "hello snapshot");
    ASSERT_TRUE(r.ReadString(&s, 100).ok());
    EXPECT_EQ(s, "");
    EXPECT_TRUE(r.ExpectEnd().ok());
  }
  {
    ByteReader r(w.bytes());
    std::string s;
    EXPECT_FALSE(r.ReadString(&s, 5).ok());  // over the caller's limit
  }
  // Declared length running past the payload.
  ByteWriter t;
  t.PutVarint(1000);
  t.PutU8('x');
  ByteReader r(t.bytes());
  std::string s;
  EXPECT_FALSE(r.ReadString(&s, 10000).ok());
}

TEST(ByteCodecTest, ReadLengthGuardsAgainstOversizedCounts) {
  ByteWriter w;
  w.PutVarint(std::numeric_limits<uint64_t>::max());  // absurd element count
  ByteReader r(w.bytes());
  size_t n = 0;
  EXPECT_FALSE(r.ReadLength(&n, 8).ok());
}

// ----------------------------------------------------------- double arrays

TEST(DoubleArrayCodecTest, RoundTripPreservesNaNBits) {
  std::vector<double> values = {1.5, -0.0, std::nan("0x5ca1ab1e"), 42.0};
  ByteWriter w;
  WriteDoubles(w, values);
  ByteReader r(w.bytes());
  std::vector<double> back;
  ASSERT_TRUE(ReadDoubles(r, &back, /*allow_nan=*/true).ok());
  ASSERT_EQ(back.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(back[i]),
              std::bit_cast<uint64_t>(values[i]));
  }
}

TEST(DoubleArrayCodecTest, InfinityAlwaysRejected) {
  std::vector<double> values = {1.0, std::numeric_limits<double>::infinity()};
  ByteWriter w;
  WriteDoubles(w, values);
  ByteReader r(w.bytes());
  std::vector<double> back;
  EXPECT_FALSE(ReadDoubles(r, &back, /*allow_nan=*/true).ok());
}

TEST(DoubleArrayCodecTest, NaNRejectedWhereFiniteRequired) {
  std::vector<double> values = {std::numeric_limits<double>::quiet_NaN()};
  ByteWriter w;
  WriteDoubles(w, values);
  ByteReader r(w.bytes());
  std::vector<double> back;
  EXPECT_FALSE(ReadDoubles(r, &back, /*allow_nan=*/false).ok());
}

TEST(DoubleArrayCodecTest, EmptyArrayRoundTrips) {
  ByteWriter w;
  WriteDoubles(w, {});
  ByteReader r(w.bytes());
  std::vector<double> back = {99.0};
  ASSERT_TRUE(ReadDoubles(r, &back, /*allow_nan=*/false).ok());
  EXPECT_TRUE(back.empty());
  EXPECT_TRUE(r.ExpectEnd().ok());
}

// ---------------------------------------------------------------- WordCode

TEST(WordCodeCodecTest, RoundTripExtremes) {
  const sax::WordCode cases[] = {
      {},  // all zero
      {0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull},
      {0x0123456789ABCDEFull, 0xFEDCBA9876543210ull}};
  for (const auto& code : cases) {
    ByteWriter w;
    WriteWordCode(w, code);
    ByteReader r(w.bytes());
    sax::WordCode back;
    ASSERT_TRUE(ReadWordCode(r, &back).ok());
    EXPECT_EQ(back, code);
  }
}

// -------------------------------------------------------------- TokenTable

sax::TokenTable MakeTable(int w, int a, size_t count, uint64_t seed) {
  sax::TokenTable table{sax::WordCodec(w, a)};
  Rng rng(seed);
  std::vector<int> symbols(static_cast<size_t>(w));
  while (table.size() < count) {
    for (auto& s : symbols) {
      s = static_cast<int>(rng.UniformInt(0, a - 1));
    }
    table.Intern(table.codec().Pack(symbols));
  }
  return table;
}

void ExpectTablesIdentical(const sax::TokenTable& a, const sax::TokenTable& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.codec().word_length(), b.codec().word_length());
  EXPECT_EQ(a.codec().alphabet_size(), b.codec().alphabet_size());
  for (size_t id = 0; id < a.size(); ++id) {
    const auto i32 = static_cast<int32_t>(id);
    EXPECT_EQ(a.CodeAt(i32), b.CodeAt(i32));
    EXPECT_EQ(b.Find(a.CodeAt(i32)), i32);
  }
}

TEST(TokenTableCodecTest, EmptyTableRoundTrips) {
  sax::TokenTable table{sax::WordCodec(4, 4)};
  ByteWriter w;
  WriteTokenTable(w, table);
  ByteReader r(w.bytes());
  sax::TokenTable back;
  ASSERT_TRUE(ReadTokenTable(r, &back).ok());
  ExpectTablesIdentical(table, back);
  EXPECT_EQ(back.Find(sax::WordCode{}), -1);
}

TEST(TokenTableCodecTest, LargeTableRoundTripsWithIdenticalProbes) {
  // Thousands of codes at the paper's largest layout (w=20, a=20 -> 100
  // bits), forcing many open-addressing growths on re-intern.
  const sax::TokenTable table = MakeTable(20, 20, 5000, /*seed=*/7);
  ByteWriter w;
  WriteTokenTable(w, table);
  ByteReader r(w.bytes());
  sax::TokenTable back;
  ASSERT_TRUE(ReadTokenTable(r, &back).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  ExpectTablesIdentical(table, back);
}

TEST(TokenTableCodecTest, MaxWidthLayoutRoundTrips) {
  // w * bits == 128 exactly: every bit of the code is legal.
  const sax::TokenTable table = MakeTable(32, 16, 64, /*seed=*/11);
  ByteWriter w;
  WriteTokenTable(w, table);
  ByteReader r(w.bytes());
  sax::TokenTable back;
  ASSERT_TRUE(ReadTokenTable(r, &back).ok());
  ExpectTablesIdentical(table, back);
}

TEST(TokenTableCodecTest, RejectsUnsupportedLayout) {
  ByteWriter w;
  w.PutVarint(40);  // w=40, a=20 -> 200 bits: not packable
  w.PutVarint(20);
  w.PutVarint(0);
  ByteReader r(w.bytes());
  sax::TokenTable back;
  EXPECT_FALSE(ReadTokenTable(r, &back).ok());
}

TEST(TokenTableCodecTest, RejectsDuplicateCodes) {
  ByteWriter w;
  w.PutVarint(4);
  w.PutVarint(4);
  w.PutVarint(2);
  const sax::WordCode code{0x55, 0};
  WriteWordCode(w, code);
  WriteWordCode(w, code);
  ByteReader r(w.bytes());
  sax::TokenTable back;
  EXPECT_FALSE(ReadTokenTable(r, &back).ok());
}

TEST(TokenTableCodecTest, RejectsBitsOutsideLayout) {
  ByteWriter w;
  w.PutVarint(4);  // 4 symbols x 2 bits = 8 packed bits
  w.PutVarint(4);
  w.PutVarint(1);
  WriteWordCode(w, sax::WordCode{0x100, 0});  // bit 8 set: outside layout
  ByteReader r(w.bytes());
  sax::TokenTable back;
  EXPECT_FALSE(ReadTokenTable(r, &back).ok());
}

TEST(TokenTableCodecTest, RejectsSymbolOutsideAlphabet) {
  ByteWriter w;
  w.PutVarint(2);  // 2 symbols x 3 bits, a = 5: symbol values 5..7 illegal
  w.PutVarint(5);
  w.PutVarint(1);
  WriteWordCode(w, sax::WordCode{0x07, 0});  // second symbol = 7
  ByteReader r(w.bytes());
  sax::TokenTable back;
  EXPECT_FALSE(ReadTokenTable(r, &back).ok());
}

TEST(TokenTableCodecTest, RejectsCountPastPayload) {
  ByteWriter w;
  w.PutVarint(4);
  w.PutVarint(4);
  w.PutVarint(1000000);  // but no code bytes follow
  ByteReader r(w.bytes());
  sax::TokenTable back;
  EXPECT_FALSE(ReadTokenTable(r, &back).ok());
}

// ------------------------------------------------------------ RollingStats

TEST(RollingStatsCodecTest, RoundTripIsBitwise) {
  stream::RollingStats stats;
  Rng rng(3);
  std::vector<double> window;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.UniformDouble() * 1e6 - 5e5;
    stats.Add(v);
    window.push_back(v);
    if (window.size() > 32) {
      stats.Remove(window.front());
      window.erase(window.begin());
    }
  }

  ByteWriter w;
  WriteRollingStats(w, stats);
  ByteReader r(w.bytes());
  stream::RollingStats back;
  ASSERT_TRUE(ReadRollingStats(r, &back).ok());

  const auto a = stats.SaveState();
  const auto b = back.SaveState();
  EXPECT_EQ(a.count, b.count);
  // The compensation terms must survive exactly — collapsing them into
  // Sum()/SumSq() would change future Add/Remove results in the last bits.
  EXPECT_EQ(std::bit_cast<uint64_t>(a.sum), std::bit_cast<uint64_t>(b.sum));
  EXPECT_EQ(std::bit_cast<uint64_t>(a.sum_comp),
            std::bit_cast<uint64_t>(b.sum_comp));
  EXPECT_EQ(std::bit_cast<uint64_t>(a.sumsq),
            std::bit_cast<uint64_t>(b.sumsq));
  EXPECT_EQ(std::bit_cast<uint64_t>(a.sumsq_comp),
            std::bit_cast<uint64_t>(b.sumsq_comp));

  // And future updates stay in lockstep.
  stats.Add(123.456);
  back.Add(123.456);
  EXPECT_EQ(stats.Sum(), back.Sum());
  EXPECT_EQ(stats.SampleStdDev(), back.SampleStdDev());
}

TEST(RollingStatsCodecTest, EmptyStatsRoundTrip) {
  stream::RollingStats stats;
  ByteWriter w;
  WriteRollingStats(w, stats);
  ByteReader r(w.bytes());
  stream::RollingStats back;
  ASSERT_TRUE(ReadRollingStats(r, &back).ok());
  EXPECT_EQ(back.count(), 0u);
  EXPECT_EQ(back.Mean(), 0.0);
}

TEST(RollingStatsCodecTest, RejectsNonFiniteAccumulators) {
  ByteWriter w;
  w.PutVarint(3);
  w.PutDouble(std::numeric_limits<double>::infinity());
  w.PutDouble(0.0);
  w.PutDouble(0.0);
  w.PutDouble(0.0);
  ByteReader r(w.bytes());
  stream::RollingStats back;
  EXPECT_FALSE(ReadRollingStats(r, &back).ok());
}

// ---------------------------------------------------------------- Status

TEST(StatusCodecTest, RoundTripAllCodes) {
  const Status cases[] = {
      Status::OK(), Status::InvalidArgument("bad input"),
      Status::OutOfRange("off the end"), Status::NotFound("missing"),
      Status::FailedPrecondition("not yet"), Status::Internal("bug")};
  for (const Status& s : cases) {
    ByteWriter w;
    WriteStatus(w, s);
    ByteReader r(w.bytes());
    Status back;
    ASSERT_TRUE(ReadStatus(r, &back).ok());
    EXPECT_EQ(back, s);
  }
}

TEST(StatusCodecTest, RejectsUnknownCodeByte) {
  ByteWriter w;
  w.PutU8(200);
  w.PutString("");
  ByteReader r(w.bytes());
  Status back;
  EXPECT_FALSE(ReadStatus(r, &back).ok());
}

// --------------------------------------------------------------- envelope

TEST(EnvelopeTest, WrapUnwrapRoundTrip) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  const auto blob = WrapPayload(BlobKind::kStreamDetector, payload);
  std::span<const uint8_t> body;
  ASSERT_TRUE(UnwrapPayload(blob, BlobKind::kStreamDetector, &body).ok());
  ASSERT_EQ(body.size(), payload.size());
  EXPECT_TRUE(std::equal(body.begin(), body.end(), payload.begin()));
}

TEST(EnvelopeTest, EmptyPayloadRoundTrips) {
  const auto blob = WrapPayload(BlobKind::kStreamEngine, {});
  std::span<const uint8_t> body;
  ASSERT_TRUE(UnwrapPayload(blob, BlobKind::kStreamEngine, &body).ok());
  EXPECT_TRUE(body.empty());
}

TEST(EnvelopeTest, RejectsWrongKind) {
  const auto blob = WrapPayload(BlobKind::kStreamEngine, {});
  std::span<const uint8_t> body;
  EXPECT_FALSE(UnwrapPayload(blob, BlobKind::kStreamDetector, &body).ok());
}

TEST(EnvelopeTest, RejectsBadMagicAndVersion) {
  const std::vector<uint8_t> payload = {9, 9, 9};
  auto blob = WrapPayload(BlobKind::kStreamDetector, payload);
  {
    auto bad = blob;
    bad[0] = 'X';
    std::span<const uint8_t> body;
    const Status st = UnwrapPayload(bad, BlobKind::kStreamDetector, &body);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
  {
    auto bad = blob;
    bad[4] = static_cast<uint8_t>(kSnapshotVersion + 1);  // version LE byte 0
    std::span<const uint8_t> body;
    const Status st = UnwrapPayload(bad, BlobKind::kStreamDetector, &body);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.message().find("version"), std::string::npos);
  }
}

TEST(EnvelopeTest, EveryTruncationFailsCleanly) {
  const std::vector<uint8_t> payload = {10, 20, 30, 40, 50, 60};
  const auto blob = WrapPayload(BlobKind::kStreamDetector, payload);
  for (size_t len = 0; len < blob.size(); ++len) {
    std::span<const uint8_t> body;
    EXPECT_FALSE(UnwrapPayload(std::span(blob).first(len),
                               BlobKind::kStreamDetector, &body)
                     .ok())
        << "truncation at " << len << " must be rejected";
  }
}

TEST(EnvelopeTest, TrailingGarbageRejected) {
  const std::vector<uint8_t> payload = {1, 2, 3};
  auto blob = WrapPayload(BlobKind::kStreamDetector, payload);
  blob.push_back(0);
  std::span<const uint8_t> body;
  EXPECT_FALSE(UnwrapPayload(blob, BlobKind::kStreamDetector, &body).ok());
}

TEST(EnvelopeTest, EveryPayloadBitFlipIsDetected) {
  // The checksum turns arbitrary payload corruption into a deterministic
  // error instead of a silently different decode.
  const std::vector<uint8_t> payload = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto blob = WrapPayload(BlobKind::kStreamDetector, payload);
  const size_t payload_start = blob.size() - payload.size();
  for (size_t i = payload_start; i < blob.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = blob;
      bad[i] = static_cast<uint8_t>(bad[i] ^ (1u << bit));
      std::span<const uint8_t> body;
      EXPECT_FALSE(UnwrapPayload(bad, BlobKind::kStreamDetector, &body).ok());
    }
  }
}

TEST(EnvelopeTest, Crc32MatchesKnownVector) {
  // The classic check value: CRC-32("123456789") = 0xCBF43926.
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(data), 0xCBF43926u);
}

// ------------------------------------------------- atomic checkpoint files

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("egi_file_io_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "checkpoint.bin").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static std::vector<uint8_t> Blob(uint8_t fill, size_t n) {
    return std::vector<uint8_t>(n, fill);
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(FileIoTest, WriteReadRoundTrip) {
  const auto blob = Blob(0xA5, 4096);
  ASSERT_TRUE(WriteFileAtomic(path_, blob).ok());
  auto back = ReadFileBytes(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, blob);
  // No temp residue after a successful write.
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(FileIoTest, ReadMissingIsNotFound) {
  auto missing = ReadFileBytes(path_);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(FileIoTest, OverwriteReplacesWholeFile) {
  ASSERT_TRUE(WriteFileAtomic(path_, Blob(1, 1 << 16)).ok());
  ASSERT_TRUE(WriteFileAtomic(path_, Blob(2, 16)).ok());  // much shorter
  auto back = ReadFileBytes(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, Blob(2, 16));
}

TEST_F(FileIoTest, KillDuringCheckpointKeepsPreviousCheckpoint) {
  // The torn-checkpoint regression test. A checkpointer killed mid-write
  // leaves exactly one artifact: a partial `path.tmp` (the direct-to-path
  // writer it replaces left a truncated blob at `path` instead, which only
  // failed at restore time). Simulate the kill in a real child process:
  // the child writes half the new checkpoint to the temp file and dies
  // before fsync/rename, the way SIGKILL would land mid-checkpoint.
  const auto v1 = WrapPayload(BlobKind::kStreamEngine, Blob(0x11, 1 << 14));
  ASSERT_TRUE(WriteFileAtomic(path_, v1).ok());

  const auto v2 = WrapPayload(BlobKind::kStreamEngine, Blob(0x22, 1 << 14));
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: begin writing v2 the way WriteFileAtomic does, then die
    // mid-write (no fsync, no rename) — _exit so no destructors run.
    const std::string tmp = path_ + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) ::_exit(2);
    (void)!::write(fd, v2.data(), v2.size() / 2);
    ::_exit(0);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);

  // The "crashed" writer left a partial temp file but the previous complete
  // checkpoint survives at the final path and still validates end to end.
  EXPECT_TRUE(std::filesystem::exists(path_ + ".tmp"));
  auto back = ReadFileBytes(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, v1);
  std::span<const uint8_t> payload;
  EXPECT_TRUE(UnwrapPayload(*back, BlobKind::kStreamEngine, &payload).ok());

  // The next successful checkpoint replaces both the file and the residue.
  ASSERT_TRUE(WriteFileAtomic(path_, v2).ok());
  back = ReadFileBytes(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, v2);
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

}  // namespace
}  // namespace egi::serialize
