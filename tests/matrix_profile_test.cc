#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "datasets/random_walk.h"
#include "discord/discords.h"
#include "discord/matrix_profile.h"
#include "util/rng.h"

namespace egi::discord {
namespace {

std::vector<double> SineWithAnomaly(size_t len, size_t anomaly_at,
                                    size_t anomaly_len, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(len);
  for (size_t i = 0; i < len; ++i) {
    v[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 25.0) +
           0.05 * rng.Gaussian();
  }
  for (size_t i = anomaly_at; i < anomaly_at + anomaly_len && i < len; ++i) {
    v[i] += 2.5;  // a bump that breaks the periodic structure
  }
  return v;
}

// -------------------------------------------------------------- validation

TEST(MatrixProfileTest, ValidatesArguments) {
  std::vector<double> v(10, 0.0);
  EXPECT_FALSE(ComputeMatrixProfileBrute(v, 1).ok());
  EXPECT_FALSE(ComputeMatrixProfileBrute(v, 11).ok());
  EXPECT_FALSE(ComputeMatrixProfileStomp(v, 1).ok());
  EXPECT_FALSE(ComputeMatrixProfileStomp(v, 4, 0).ok());
}

TEST(MatrixProfileTest, DefaultExclusionRadiusIsHalfWindow) {
  EXPECT_EQ(DefaultExclusionRadius(10), 5u);
  EXPECT_EQ(DefaultExclusionRadius(3), 1u);
  EXPECT_EQ(DefaultExclusionRadius(2), 1u);
}

// ----------------------------------------------------------- known cases

TEST(MatrixProfileTest, IdenticalRepeatsHaveZeroDistance) {
  // Periodic series: every window has an exact z-normalized match.
  std::vector<double> v;
  for (int rep = 0; rep < 8; ++rep) {
    for (double x : {0.0, 1.0, 2.0, 1.0}) v.push_back(x);
  }
  auto mp = ComputeMatrixProfileStomp(v, 4);
  ASSERT_TRUE(mp.ok());
  for (size_t i = 0; i < mp->size(); ++i) {
    EXPECT_NEAR(mp->distances[i], 0.0, 1e-6) << "at " << i;
  }
}

TEST(MatrixProfileTest, AnomalousWindowHasLargestDistance) {
  const auto v = SineWithAnomaly(400, 200, 12, 3);
  auto mp = ComputeMatrixProfileStomp(v, 25);
  ASSERT_TRUE(mp.ok());
  auto discords = TopKDiscords(*mp, 1);
  ASSERT_EQ(discords.size(), 1u);
  // The discord must overlap the planted bump.
  EXPECT_GE(discords[0].position + 25, 200u);
  EXPECT_LE(discords[0].position, 212u);
}

TEST(MatrixProfileTest, FlatRegionsFollowConventions) {
  // Two flat windows: distance 0; flat vs non-flat: sqrt(m).
  std::vector<double> v(40, 1.0);
  for (size_t i = 20; i < 30; ++i)
    v[i] = std::sin(static_cast<double>(i));
  auto brute = ComputeMatrixProfileBrute(v, 5);
  auto stomp = ComputeMatrixProfileStomp(v, 5);
  ASSERT_TRUE(brute.ok() && stomp.ok());
  for (size_t i = 0; i < brute->size(); ++i) {
    EXPECT_NEAR(brute->distances[i], stomp->distances[i], 1e-6) << "at " << i;
  }
  // Window 0 (flat) matches another flat window at distance 0.
  EXPECT_NEAR(stomp->distances[0], 0.0, 1e-9);
}

TEST(MatrixProfileTest, NoAdmissibleNeighbourYieldsInfinity) {
  // count = 3 windows, exclusion radius 5 -> no admissible pairs.
  std::vector<double> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto mp = ComputeMatrixProfileStomp(v, 6, 1, /*exclusion_radius=*/5);
  ASSERT_TRUE(mp.ok());
  for (double d : mp->distances) EXPECT_TRUE(std::isinf(d));
  EXPECT_TRUE(TopKDiscords(*mp, 3).empty());
}

// ----------------------------------------------- STOMP == brute property

class StompEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {};

TEST_P(StompEquivalenceTest, MatchesBruteForce) {
  const auto [len, m, seed] = GetParam();
  Rng rng(seed);
  const auto v = datasets::MakeRandomWalk(len, rng);

  auto brute = ComputeMatrixProfileBrute(v, m);
  auto stomp = ComputeMatrixProfileStomp(v, m);
  ASSERT_TRUE(brute.ok() && stomp.ok());
  ASSERT_EQ(brute->size(), stomp->size());
  for (size_t i = 0; i < brute->size(); ++i) {
    if (std::isinf(brute->distances[i]) && std::isinf(stomp->distances[i])) {
      continue;  // both found no admissible neighbour: agreement
    }
    EXPECT_NEAR(brute->distances[i], stomp->distances[i], 1e-6)
        << "len=" << len << " m=" << m << " i=" << i;
  }
}

TEST_P(StompEquivalenceTest, ParallelMatchesSerial) {
  const auto [len, m, seed] = GetParam();
  Rng rng(seed ^ 0xBEEF);
  const auto v = datasets::MakeRandomWalk(len, rng);

  auto serial = ComputeMatrixProfileStomp(v, m, 1);
  auto par2 = ComputeMatrixProfileStomp(v, m, 2);
  auto par3 = ComputeMatrixProfileStomp(v, m, 3);
  ASSERT_TRUE(serial.ok() && par2.ok() && par3.ok());
  for (size_t i = 0; i < serial->size(); ++i) {
    if (std::isinf(serial->distances[i])) {
      EXPECT_TRUE(std::isinf(par2->distances[i])) << i;
      EXPECT_TRUE(std::isinf(par3->distances[i])) << i;
      continue;
    }
    EXPECT_NEAR(serial->distances[i], par2->distances[i], 1e-7) << i;
    EXPECT_NEAR(serial->distances[i], par3->distances[i], 1e-7) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StompEquivalenceTest,
    ::testing::Combine(::testing::Values(30, 64, 150, 257),
                       ::testing::Values(4, 8, 16),
                       ::testing::Values(1, 2, 3)));

// ----------------------------------------------------------- top-k discords

TEST(TopKDiscordsTest, NonOverlappingAndSortedDescending) {
  const auto v = SineWithAnomaly(600, 150, 12, 7);
  auto mp = ComputeMatrixProfileStomp(v, 25);
  ASSERT_TRUE(mp.ok());
  auto discords = TopKDiscords(*mp, 3);
  ASSERT_EQ(discords.size(), 3u);
  for (size_t i = 1; i < discords.size(); ++i) {
    EXPECT_GE(discords[i - 1].distance, discords[i].distance);
    for (size_t j = 0; j < i; ++j) {
      const size_t gap = discords[i].position > discords[j].position
                             ? discords[i].position - discords[j].position
                             : discords[j].position - discords[i].position;
      EXPECT_GE(gap, 25u) << "discords " << i << " and " << j << " overlap";
    }
  }
}

TEST(TopKDiscordsTest, KLargerThanAvailable) {
  std::vector<double> v{0, 1, 0, 1, 0, 1, 0, 2, 0, 1, 0, 1};
  auto mp = ComputeMatrixProfileStomp(v, 4);
  ASSERT_TRUE(mp.ok());
  auto discords = TopKDiscords(*mp, 100);
  EXPECT_LE(discords.size(), mp->size());
  EXPECT_FALSE(discords.empty());
}

}  // namespace
}  // namespace egi::discord
