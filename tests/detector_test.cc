#include <gtest/gtest.h>

#include <vector>

#include "core/detector.h"
#include "datasets/planted.h"
#include "ts/window.h"
#include "util/rng.h"

namespace egi::core {
namespace {

datasets::PlantedSeries WaferSeries(uint64_t seed) {
  Rng rng(seed);
  return datasets::MakePlantedSeries(datasets::UcrDataset::kWafer, rng);
}

void ExpectValidCandidates(const std::vector<Anomaly>& cands,
                           size_t series_len, size_t window) {
  EXPECT_LE(cands.size(), 3u);
  EXPECT_FALSE(cands.empty());
  for (const auto& c : cands) {
    EXPECT_LE(c.position + window, series_len);
    EXPECT_EQ(c.length, window);
  }
  for (size_t i = 0; i < cands.size(); ++i) {
    for (size_t j = i + 1; j < cands.size(); ++j) {
      EXPECT_FALSE(ts::Overlaps(cands[i].window(), cands[j].window()));
    }
  }
  // Sorted most-anomalous first.
  for (size_t i = 1; i < cands.size(); ++i) {
    EXPECT_GE(cands[i - 1].severity, cands[i].severity);
  }
}

TEST(EnsembleGiDetectorTest, ProducesValidCandidates) {
  const auto s = WaferSeries(1);
  EnsembleParams p;
  p.ensemble_size = 15;
  EnsembleGiDetector det(p);
  auto r = det.Detect(s.values, 150, 3);
  ASSERT_TRUE(r.ok()) << r.status();
  ExpectValidCandidates(*r, s.values.size(), 150);
  EXPECT_EQ(det.last_result().members.size(), 15u);
}

TEST(EnsembleGiDetectorTest, WmaxClampedToSmallWindows) {
  // Window of 6 < default wmax of 10: the detector must clamp, not fail.
  const auto s = WaferSeries(2);
  EnsembleGiDetector det;
  auto r = det.Detect(s.values, 6, 2);
  ASSERT_TRUE(r.ok()) << r.status();
  for (const auto& m : det.last_result().members) EXPECT_LE(m.paa_size, 6);
}

TEST(FixedGiDetectorTest, ProducesValidCandidates) {
  const auto s = WaferSeries(3);
  FixedGiDetector det;  // w=4, a=4
  auto r = det.Detect(s.values, 150, 3);
  ASSERT_TRUE(r.ok()) << r.status();
  ExpectValidCandidates(*r, s.values.size(), 150);
}

TEST(RandomGiDetectorTest, DrawsParamsInRange) {
  const auto s = WaferSeries(4);
  RandomGiDetector det(10, 10, 5);
  auto r = det.Detect(s.values, 150, 3);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GE(det.last_paa_size(), 2);
  EXPECT_LE(det.last_paa_size(), 10);
  EXPECT_GE(det.last_alphabet_size(), 2);
  EXPECT_LE(det.last_alphabet_size(), 10);
}

TEST(RandomGiDetectorTest, DifferentDrawsAcrossCalls) {
  const auto s = WaferSeries(5);
  RandomGiDetector det(10, 10, 5);
  std::vector<std::pair<int, int>> draws;
  for (int i = 0; i < 8; ++i) {
    auto r = det.Detect(s.values, 150, 1);
    ASSERT_TRUE(r.ok());
    draws.emplace_back(det.last_paa_size(), det.last_alphabet_size());
  }
  bool varied = false;
  for (size_t i = 1; i < draws.size(); ++i) {
    if (draws[i] != draws[0]) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(SelectGiDetectorTest, SelectsParamsWithinGrid) {
  const auto s = WaferSeries(6);
  SelectGiDetector det(10, 10, 0.1);
  auto params = det.SelectParams(s.values, 150);
  ASSERT_TRUE(params.ok()) << params.status();
  EXPECT_GE(params->paa_size, 2);
  EXPECT_LE(params->paa_size, 10);
  EXPECT_GE(params->alphabet_size, 2);
  EXPECT_LE(params->alphabet_size, 10);

  auto r = det.Detect(s.values, 150, 3);
  ASSERT_TRUE(r.ok()) << r.status();
  ExpectValidCandidates(*r, s.values.size(), 150);
  EXPECT_EQ(det.last_paa_size(), params->paa_size);
}

TEST(SelectGiDetectorTest, SelectionIsDeterministic) {
  const auto s = WaferSeries(7);
  SelectGiDetector det(10, 10, 0.1);
  auto p1 = det.SelectParams(s.values, 150);
  auto p2 = det.SelectParams(s.values, 150);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1->paa_size, p2->paa_size);
  EXPECT_EQ(p1->alphabet_size, p2->alphabet_size);
}

TEST(DiscordDetectorTest, ProducesValidCandidates) {
  const auto s = WaferSeries(8);
  DiscordDetector det(2);
  auto r = det.Detect(s.values, 150, 3);
  ASSERT_TRUE(r.ok()) << r.status();
  ExpectValidCandidates(*r, s.values.size(), 150);
  // Discord severities are 1-NN distances: non-negative.
  for (const auto& c : *r) EXPECT_GE(c.severity, 0.0);
}

TEST(DiscordDetectorTest, FindsPlantedWaferAnomaly) {
  const auto s = WaferSeries(9);
  DiscordDetector det(2);
  auto r = det.Detect(s.values, 150, 3);
  ASSERT_TRUE(r.ok());
  bool hit = false;
  for (const auto& c : *r) {
    if (ts::Overlaps(c.window(), s.anomaly)) hit = true;
  }
  EXPECT_TRUE(hit);
}

TEST(DetectorTest, AllDetectorsRejectOversizedWindow) {
  std::vector<double> tiny(10, 0.0);
  EnsembleGiDetector ens;
  FixedGiDetector fix;
  DiscordDetector disc;
  EXPECT_FALSE(ens.Detect(tiny, 11, 1).ok());
  EXPECT_FALSE(fix.Detect(tiny, 11, 1).ok());
  EXPECT_FALSE(disc.Detect(tiny, 11, 1).ok());
}

}  // namespace
}  // namespace egi::core
