#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string_view>
#include <limits>
#include <fstream>
#include <set>
#include <sstream>

#include "util/csv.h"
#include "util/env.h"
#include "util/json.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace egi {
namespace {

// ----------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad arg").message(), "bad arg");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("w too big").ToString(),
            "InvalidArgument: w too big");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::NotFound("gone");
  EXPECT_EQ(os.str(), "NotFound: gone");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

Status FailingHelper() { return Status::OutOfRange("helper"); }

Status PropagationSite() {
  EGI_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(PropagationSite().code(), StatusCode::kOutOfRange);
}

// ----------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  EGI_ASSIGN_OR_RETURN(int half, HalveEven(x));
  EGI_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnHappyPath) {
  auto r = QuarterViaMacro(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  EXPECT_FALSE(QuarterViaMacro(6).ok());  // 6 -> 3, second halving fails
  EXPECT_FALSE(QuarterViaMacro(7).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(2, 10);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u);  // all values hit
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleWithoutReplacementUniqueAndInRange) {
  Rng rng(29);
  auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(31);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng child = a.Fork();
  // The child stream should not replay the parent's outputs.
  Rng reference(41);
  reference.NextUint64();  // parent consumed one draw to fork
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextUint64() == reference.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// -------------------------------------------------------------------- CSV

TEST(CsvTest, EscapePlainFieldUnchanged) {
  EXPECT_EQ(CsvWriter::EscapeField("abc"), "abc");
}

TEST(CsvTest, EscapeComma) {
  EXPECT_EQ(CsvWriter::EscapeField("a,b"), "\"a,b\"");
}

TEST(CsvTest, EscapeQuote) {
  EXPECT_EQ(CsvWriter::EscapeField("a\"b"), "\"a\"\"b\"");
}

TEST(CsvTest, EscapeNewline) {
  EXPECT_EQ(CsvWriter::EscapeField("a\nb"), "\"a\nb\"");
}

TEST(CsvTest, WritesRowsToFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "egi_csv_test.csv").string();
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.ok());
    w.WriteRow({"h1", "h,2"});
    w.WriteNumericRow({1.5, 2.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h1,\"h,2\"");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2");
  std::filesystem::remove(path);
}

// -------------------------------------------------------------------- Env

TEST(EnvTest, IntFallbackWhenUnset) {
  ::unsetenv("EGI_TEST_INT");
  EXPECT_EQ(GetEnvInt("EGI_TEST_INT", 7), 7);
}

TEST(EnvTest, IntParsed) {
  ::setenv("EGI_TEST_INT", "42", 1);
  EXPECT_EQ(GetEnvInt("EGI_TEST_INT", 7), 42);
  ::unsetenv("EGI_TEST_INT");
}

TEST(EnvTest, IntGarbageFallsBack) {
  ::setenv("EGI_TEST_INT", "4x2", 1);
  EXPECT_EQ(GetEnvInt("EGI_TEST_INT", 7), 7);
  ::unsetenv("EGI_TEST_INT");
}

TEST(EnvTest, IntOutOfRangeFallsBack) {
  // strtoll saturates these to LLONG_MAX/MIN with errno == ERANGE; the
  // clamp must not leak through as a parsed value.
  ::setenv("EGI_TEST_INT", "99999999999999999999999999", 1);
  EXPECT_EQ(GetEnvInt("EGI_TEST_INT", 7), 7);
  ::setenv("EGI_TEST_INT", "-99999999999999999999999999", 1);
  EXPECT_EQ(GetEnvInt("EGI_TEST_INT", 7), 7);
  ::unsetenv("EGI_TEST_INT");
}

TEST(EnvTest, IntLimitsStillParse) {
  ::setenv("EGI_TEST_INT", "9223372036854775807", 1);
  EXPECT_EQ(GetEnvInt("EGI_TEST_INT", 7),
            std::numeric_limits<int64_t>::max());
  ::setenv("EGI_TEST_INT", "-9223372036854775808", 1);
  EXPECT_EQ(GetEnvInt("EGI_TEST_INT", 7),
            std::numeric_limits<int64_t>::min());
  ::unsetenv("EGI_TEST_INT");
}

TEST(EnvTest, BoolVariants) {
  ::setenv("EGI_TEST_BOOL", "TRUE", 1);
  EXPECT_TRUE(GetEnvBool("EGI_TEST_BOOL", false));
  ::setenv("EGI_TEST_BOOL", "0", 1);
  EXPECT_FALSE(GetEnvBool("EGI_TEST_BOOL", true));
  ::setenv("EGI_TEST_BOOL", "banana", 1);
  EXPECT_TRUE(GetEnvBool("EGI_TEST_BOOL", true));
  ::unsetenv("EGI_TEST_BOOL");
}

TEST(EnvTest, DoubleParsed) {
  ::setenv("EGI_TEST_DBL", "0.25", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("EGI_TEST_DBL", 1.0), 0.25);
  ::unsetenv("EGI_TEST_DBL");
}

TEST(EnvTest, DoubleGarbageFallsBack) {
  ::setenv("EGI_TEST_DBL", "0.25pie", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("EGI_TEST_DBL", 1.0), 1.0);
  ::unsetenv("EGI_TEST_DBL");
}

TEST(EnvTest, DoubleOverflowFallsBack) {
  // strtod saturates to +/-HUGE_VAL with errno == ERANGE; the saturated
  // infinity must not leak through as a parsed value.
  ::setenv("EGI_TEST_DBL", "1e999", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("EGI_TEST_DBL", 1.0), 1.0);
  ::setenv("EGI_TEST_DBL", "-1e999", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("EGI_TEST_DBL", 1.0), 1.0);
  ::unsetenv("EGI_TEST_DBL");
}

TEST(EnvTest, DoubleExtremeButRepresentableStillParses) {
  ::setenv("EGI_TEST_DBL", "1e308", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("EGI_TEST_DBL", 1.0), 1e308);
  // Subnormals set ERANGE on glibc but are representable, not saturated;
  // they must parse, not fall back.
  ::setenv("EGI_TEST_DBL", "1e-320", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("EGI_TEST_DBL", 1.0), 1e-320);
  ::unsetenv("EGI_TEST_DBL");
}

TEST(EnvTest, StringFallback) {
  ::unsetenv("EGI_TEST_STR");
  EXPECT_EQ(GetEnvString("EGI_TEST_STR", "dflt"), "dflt");
  ::setenv("EGI_TEST_STR", "value", 1);
  EXPECT_EQ(GetEnvString("EGI_TEST_STR", "dflt"), "value");
  ::unsetenv("EGI_TEST_STR");
}

TEST(EnvTest, IntWhitespaceSymmetric) {
  // strtoll accepts leading whitespace; trailing whitespace must be
  // accepted symmetrically (daemon config leans on these parsers).
  ::setenv("EGI_TEST_INT", " 4", 1);
  EXPECT_EQ(GetEnvInt("EGI_TEST_INT", 7), 4);
  ::setenv("EGI_TEST_INT", "4 ", 1);
  EXPECT_EQ(GetEnvInt("EGI_TEST_INT", 7), 4);
  ::setenv("EGI_TEST_INT", " 4 \t\n", 1);
  EXPECT_EQ(GetEnvInt("EGI_TEST_INT", 7), 4);
  // Whitespace *inside* the number, or garbage after the spaces, still
  // falls back — the skip only widens the boundary, never the grammar.
  ::setenv("EGI_TEST_INT", "4 2", 1);
  EXPECT_EQ(GetEnvInt("EGI_TEST_INT", 7), 7);
  ::setenv("EGI_TEST_INT", "4 x", 1);
  EXPECT_EQ(GetEnvInt("EGI_TEST_INT", 7), 7);
  ::setenv("EGI_TEST_INT", "   ", 1);
  EXPECT_EQ(GetEnvInt("EGI_TEST_INT", 7), 7);
  ::unsetenv("EGI_TEST_INT");
}

TEST(EnvTest, DoubleWhitespaceSymmetric) {
  ::setenv("EGI_TEST_DBL", " 0.25", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("EGI_TEST_DBL", 1.0), 0.25);
  ::setenv("EGI_TEST_DBL", "0.25 ", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("EGI_TEST_DBL", 1.0), 0.25);
  ::setenv("EGI_TEST_DBL", "\t0.25\t", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("EGI_TEST_DBL", 1.0), 0.25);
  ::setenv("EGI_TEST_DBL", "0.2 5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("EGI_TEST_DBL", 1.0), 1.0);
  ::setenv("EGI_TEST_DBL", " ", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("EGI_TEST_DBL", 1.0), 1.0);
  ::unsetenv("EGI_TEST_DBL");
}

TEST(EnvTest, BoolWhitespaceTolerant) {
  ::setenv("EGI_TEST_BOOL", " true ", 1);
  EXPECT_TRUE(GetEnvBool("EGI_TEST_BOOL", false));
  ::setenv("EGI_TEST_BOOL", "0\n", 1);
  EXPECT_FALSE(GetEnvBool("EGI_TEST_BOOL", true));
  ::unsetenv("EGI_TEST_BOOL");
}

// ------------------------------------------------------------------- JSON

// Hostile label strings of the kind the egid daemon's /metrics endpoint
// exposes to real parsers: quotes, backslashes, control characters, DEL,
// multi-byte UTF-8.
const char* const kHostileStrings[] = {
    "plain",
    "quote\"inside",
    "back\\slash",
    "both\\\"mixed\\\"",
    "new\nline\ttab\rcr",
    "bell\x07null-adjacent\x01\x1f",
    "backspace\b formfeed\f",
    "trailing backslash\\",
    "\"", "\\", "",
    "unicode \xc3\xa9\xe2\x82\xac ok",
    "del\x7f char",
};

TEST(JsonTest, EscapeUnescapeRoundTripsHostileStrings) {
  for (const char* s : kHostileStrings) {
    const std::string escaped = JsonEscape(s);
    // The escaped form must contain no raw control character, and
    // JsonUnescape (which rejects unescaped quotes and controls) must
    // accept it — together: safe inside a JSON string literal.
    for (const char c : escaped) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20) << s;
    }
    std::string decoded;
    ASSERT_TRUE(JsonUnescape(escaped, &decoded)) << s;
    EXPECT_EQ(decoded, s);
  }
}

TEST(JsonTest, EscapeUsesShortFormsForCommonControls) {
  EXPECT_EQ(JsonEscape("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
  EXPECT_EQ(JsonEscape("\x01"), "\\u0001");
  EXPECT_EQ(JsonEscape("q\"b\\"), "q\\\"b\\\\");
}

TEST(JsonTest, QuoteWrapsEscaped) {
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
}

TEST(JsonTest, UnescapeHandlesUnicodeEscapes) {
  std::string out;
  ASSERT_TRUE(JsonUnescape("caf\\u00e9", &out));
  EXPECT_EQ(out, "caf\xc3\xa9");
  ASSERT_TRUE(JsonUnescape("\\u20ac", &out));
  EXPECT_EQ(out, "\xe2\x82\xac");
  // Surrogate pair: U+1F600.
  ASSERT_TRUE(JsonUnescape("\\ud83d\\ude00", &out));
  EXPECT_EQ(out, "\xf0\x9f\x98\x80");
  ASSERT_TRUE(JsonUnescape("\\/", &out));
  EXPECT_EQ(out, "/");
}

TEST(JsonTest, UnescapeRejectsMalformed) {
  std::string out;
  EXPECT_FALSE(JsonUnescape("trailing\\", &out));
  EXPECT_FALSE(JsonUnescape("\\q", &out));
  EXPECT_FALSE(JsonUnescape("\\u12", &out));
  EXPECT_FALSE(JsonUnescape("\\u12zz", &out));
  EXPECT_FALSE(JsonUnescape("\\ud800 lone high", &out));
  EXPECT_FALSE(JsonUnescape("\\udc00 lone low", &out));
  EXPECT_FALSE(JsonUnescape("raw\"quote", &out));
  EXPECT_FALSE(JsonUnescape(std::string_view("raw\nnewline", 11), &out));
}

TEST(JsonTest, NumberRendersRoundTrippableOrNull) {
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  const std::string rendered = JsonNumber(0.1);
  EXPECT_DOUBLE_EQ(std::strtod(rendered.c_str(), nullptr), 0.1);
}

// ------------------------------------------------------------------ Table

TEST(TableTest, FormatDoubleFixedPrecision) {
  EXPECT_EQ(FormatDouble(0.39514, 4), "0.3951");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
}

TEST(TableTest, PrintAlignsColumns) {
  TextTable t("Title");
  t.SetHeader({"Dataset", "Score"});
  t.AddRow({"Wafer", "0.31"});
  t.AddRow({"StarLightCurve", "0.94"});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("StarLightCurve"), std::string::npos);
  // Both numeric cells right-aligned to the same column end.
  EXPECT_NE(s.find("0.31"), std::string::npos);
  EXPECT_NE(s.find("0.94"), std::string::npos);
}

TEST(TableTest, EmptyTablePrintsNothing) {
  TextTable t;
  std::ostringstream os;
  t.Print(os);
  EXPECT_TRUE(os.str().empty());
}

// -------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, MeasuresNonNegativeElapsed) {
  Stopwatch sw;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  sw.Restart();
  EXPECT_GE(sw.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace egi
