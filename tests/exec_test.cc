#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/parallel.h"
#include "util/env.h"

namespace egi::exec {
namespace {

// ------------------------------------------------------------ Parallelism

TEST(ParallelismTest, DefaultsAndFactories) {
  EXPECT_EQ(Parallelism{}.threads, 1);
  EXPECT_TRUE(Parallelism{}.serial());
  EXPECT_TRUE(Parallelism::Serial().serial());
  EXPECT_EQ(Parallelism::Fixed(4).threads, 4);
  EXPECT_FALSE(Parallelism::Fixed(4).serial());
  // Implicit int conversion keeps legacy num_threads call sites working.
  Parallelism p = 3;
  EXPECT_EQ(p.threads, 3);
}

TEST(ParallelismTest, FromEnvHonorsVariableAndClampsDefault) {
  ASSERT_EQ(setenv("EGI_NUM_THREADS", "5", 1), 0);
  EXPECT_EQ(Parallelism::FromEnv().threads, 5);
  EXPECT_EQ(GetEnvNumThreads(), 5);

  // Non-positive and garbage values fall back to hardware_concurrency >= 1.
  ASSERT_EQ(setenv("EGI_NUM_THREADS", "0", 1), 0);
  EXPECT_GE(GetEnvNumThreads(), 1);
  ASSERT_EQ(setenv("EGI_NUM_THREADS", "-3", 1), 0);
  EXPECT_GE(GetEnvNumThreads(), 1);
  ASSERT_EQ(setenv("EGI_NUM_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(GetEnvNumThreads(), 1);

  // Values beyond int range must clamp, not wrap to <= 0 (2^32 would
  // truncate to 0 under a bare static_cast).
  ASSERT_EQ(setenv("EGI_NUM_THREADS", "4294967296", 1), 0);
  EXPECT_GE(GetEnvNumThreads(), 1);

  ASSERT_EQ(unsetenv("EGI_NUM_THREADS"), 0);
  EXPECT_GE(GetEnvNumThreads(), 1);
}

// ------------------------------------------------------------- chunk math

TEST(NumChunksTest, DeterministicFromRangeAndGrainOnly) {
  EXPECT_EQ(NumChunks(0, 10), 0u);
  EXPECT_EQ(NumChunks(1, 10), 1u);
  EXPECT_EQ(NumChunks(10, 10), 1u);
  EXPECT_EQ(NumChunks(11, 10), 2u);
  EXPECT_EQ(NumChunks(100, 7), 15u);
  EXPECT_EQ(NumChunks(5, 0), 5u);  // grain clamped to 1
}

// ------------------------------------------------------------ ParallelFor

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  std::atomic<int> calls{0};
  ParallelFor(Parallelism::Fixed(4), 0, 0, 1, [&](size_t) { ++calls; });
  ParallelFor(Parallelism::Fixed(4), 5, 5, 1, [&](size_t) { ++calls; });
  ParallelFor(Parallelism::Fixed(4), 7, 3, 1, [&](size_t) { ++calls; });
  ParallelForRanges(Parallelism::Fixed(4), 2, 2, 8,
                    [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, RangeSmallerThanGrainRunsAsOneChunk) {
  std::vector<int> hits(5, 0);
  std::atomic<int> chunks{0};
  ParallelForRanges(Parallelism::Fixed(8), 0, 5, 100,
                    [&](size_t b, size_t e) {
                      ++chunks;
                      for (size_t i = b; i < e; ++i) ++hits[i];
                    });
  EXPECT_EQ(chunks.load(), 1);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, EveryIndexVisitedExactlyOnce) {
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h = 0;
  ParallelFor(Parallelism::Fixed(4), 0, kN, 7, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, NonZeroBeginOffsetsCorrectly) {
  std::vector<std::atomic<int>> hits(20);
  for (auto& h : hits) h = 0;
  ParallelFor(Parallelism::Fixed(3), 5, 17, 2, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 17) ? 1 : 0) << i;
  }
}

TEST(ParallelForTest, RangesPartitionExactlyAtGrainBoundaries) {
  std::vector<std::pair<size_t, size_t>> ranges;
  std::mutex mu;
  ParallelForRanges(Parallelism::Fixed(4), 3, 23, 6, [&](size_t b, size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(b, e);
  });
  std::sort(ranges.begin(), ranges.end());
  // [3,23) at grain 6: [3,9) [9,15) [15,21) [21,23) — thread-count free.
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges[0], (std::pair<size_t, size_t>{3, 9}));
  EXPECT_EQ(ranges[1], (std::pair<size_t, size_t>{9, 15}));
  EXPECT_EQ(ranges[2], (std::pair<size_t, size_t>{15, 21}));
  EXPECT_EQ(ranges[3], (std::pair<size_t, size_t>{21, 23}));
}

TEST(ParallelForTest, SerialPathPreservesOrder) {
  std::vector<size_t> order;
  ParallelFor(Parallelism::Serial(), 0, 10, 3,
              [&](size_t i) { order.push_back(i); });
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, ExceptionPropagatesFromParallelWorker) {
  EXPECT_THROW(
      ParallelFor(Parallelism::Fixed(4), 0, 100, 1,
                  [&](size_t i) {
                    if (i == 37) throw std::runtime_error("worker failure");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, ExceptionPropagatesFromSerialPath) {
  EXPECT_THROW(ParallelFor(Parallelism::Serial(), 0, 10, 1,
                           [&](size_t i) {
                             if (i == 3) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, ExceptionAbortsRemainingChunks) {
  std::atomic<int> executed{0};
  try {
    ParallelFor(Parallelism::Fixed(2), 0, 100000, 1, [&](size_t i) {
      if (i == 0) throw std::runtime_error("early failure");
      ++executed;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  // The abort flag stops the chunk drain well before the full range.
  EXPECT_LT(executed.load(), 100000);
}

TEST(ParallelForTest, NestedUseFallsBackToSerial) {
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  std::atomic<bool> saw_region{false};
  std::atomic<bool> inner_on_same_thread{true};
  ParallelFor(Parallelism::Fixed(4), 0, 8, 1, [&](size_t outer) {
    if (ThreadPool::InParallelRegion()) saw_region = true;
    const auto outer_thread = std::this_thread::get_id();
    // The nested region must run inline on this thread, in order.
    ParallelFor(Parallelism::Fixed(4), 0, 8, 1, [&](size_t inner) {
      if (std::this_thread::get_id() != outer_thread) {
        inner_on_same_thread = false;
      }
      ++hits[outer * 8 + inner];
    });
  });
  EXPECT_TRUE(saw_region.load());
  EXPECT_TRUE(inner_on_same_thread.load());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ZeroWorkersRunsEverythingOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(5);
  pool.RunChunks(5, 8, [&](size_t c) { ids[c] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ChunksActuallyRunConcurrently) {
  // Two chunks rendezvous at a barrier: this only completes if the pool
  // really runs them on two threads at once. A timed wait turns a
  // regression into a failure instead of a hang.
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  std::atomic<bool> timed_out{false};
  pool.RunChunks(2, 2, [&](size_t) {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    if (!cv.wait_for(lock, std::chrono::seconds(30),
                     [&] { return arrived == 2; })) {
      timed_out = true;
    }
  });
  EXPECT_FALSE(timed_out.load()) << "chunks never overlapped in time";
}

TEST(ThreadPoolTest, ZeroChunksIsANoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.RunChunks(0, 4, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ConcurrencyCapOneIsSerialInOrder) {
  ThreadPool pool(2);
  std::vector<size_t> order;
  pool.RunChunks(6, 1, [&](size_t c) { order.push_back(c); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(ThreadPoolTest, SharedPoolIsReusableAcrossRegions) {
  // Back-to-back regions through the shared pool must all complete (the
  // pool survives and drains its queue between calls).
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    ParallelFor(Parallelism::Fixed(4), 0, 100, 3,
                [&](size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

}  // namespace
}  // namespace egi::exec
