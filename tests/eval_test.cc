#include <gtest/gtest.h>

#include <vector>

#include "eval/experiment.h"
#include "eval/methods.h"
#include "eval/metrics.h"

namespace egi::eval {
namespace {

// ------------------------------------------------------------- Score Eq. 5

TEST(ScoreTest, ExactMatchScoresOne) {
  EXPECT_DOUBLE_EQ(ScoreEq5(100, 100, 50), 1.0);
}

TEST(ScoreTest, LinearDecay) {
  EXPECT_DOUBLE_EQ(ScoreEq5(110, 100, 50), 0.8);
  EXPECT_DOUBLE_EQ(ScoreEq5(90, 100, 50), 0.8);   // symmetric
  EXPECT_DOUBLE_EQ(ScoreEq5(125, 100, 50), 0.5);
}

TEST(ScoreTest, ZeroBeyondOneGtLength) {
  EXPECT_DOUBLE_EQ(ScoreEq5(150, 100, 50), 0.0);
  EXPECT_DOUBLE_EQ(ScoreEq5(400, 100, 50), 0.0);
  EXPECT_DOUBLE_EQ(ScoreEq5(0, 100, 50), 0.0);
}

TEST(ScoreTest, BoundaryJustInside) {
  EXPECT_NEAR(ScoreEq5(149, 100, 50), 0.02, 1e-12);
}

TEST(BestScoreTest, TakesMaxOverCandidates) {
  std::vector<core::Anomaly> cands;
  core::Anomaly a;
  a.position = 130;  // Score 0.4
  cands.push_back(a);
  a.position = 105;  // Score 0.9
  cands.push_back(a);
  a.position = 500;  // Score 0
  cands.push_back(a);
  EXPECT_DOUBLE_EQ(BestScore(cands, ts::Window{100, 50}), 0.9);
}

TEST(BestScoreTest, EmptyCandidatesScoreZero) {
  EXPECT_DOUBLE_EQ(BestScore({}, ts::Window{10, 5}), 0.0);
}

TEST(HitTest, HitIffPositiveScore) {
  std::vector<core::Anomaly> cands(1);
  cands[0].position = 149;
  EXPECT_TRUE(IsHit(cands, ts::Window{100, 50}));
  cands[0].position = 150;
  EXPECT_FALSE(IsHit(cands, ts::Window{100, 50}));
}

// ------------------------------------------------------------------- W/T/L

TEST(WinTieLossTest, Tallies) {
  WinTieLoss wtl;
  wtl.Add(0.9, 0.5);   // win
  wtl.Add(0.5, 0.5);   // tie
  wtl.Add(0.2, 0.7);   // loss
  wtl.Add(0.7, 0.7);   // tie
  EXPECT_EQ(wtl.wins, 1);
  EXPECT_EQ(wtl.ties, 2);
  EXPECT_EQ(wtl.losses, 1);
  EXPECT_EQ(wtl.ToString(), "1/2/1");
}

TEST(WinTieLossTest, EpsilonTreatsNearEqualAsTie) {
  WinTieLoss wtl;
  wtl.Add(0.5 + 1e-14, 0.5);
  EXPECT_EQ(wtl.ties, 1);
}

TEST(CompareScoresTest, PairwiseComparison) {
  MethodAggregate a, b;
  a.scores = {1.0, 0.5, 0.0, 0.3};
  b.scores = {0.5, 0.5, 0.2, 0.1};
  const auto wtl = CompareScores(a, b);
  EXPECT_EQ(wtl.wins, 2);
  EXPECT_EQ(wtl.ties, 1);
  EXPECT_EQ(wtl.losses, 1);
}

// --------------------------------------------------------------- aggregate

TEST(MethodAggregateTest, AverageAndHitRate) {
  MethodAggregate agg;
  agg.scores = {1.0, 0.0, 0.5, 0.0};
  EXPECT_DOUBLE_EQ(agg.AverageScore(), 0.375);
  EXPECT_DOUBLE_EQ(agg.HitRate(), 0.5);
}

TEST(MethodAggregateTest, EmptyAggregates) {
  MethodAggregate agg;
  EXPECT_DOUBLE_EQ(agg.AverageScore(), 0.0);
  EXPECT_DOUBLE_EQ(agg.HitRate(), 0.0);
}

// ----------------------------------------------------------------- methods

TEST(MethodsTest, NamesMatchPaper) {
  EXPECT_EQ(MethodName(Method::kProposed), "Proposed");
  EXPECT_EQ(MethodName(Method::kGiRandom), "GI-Random");
  EXPECT_EQ(MethodName(Method::kGiFix), "GI-Fix");
  EXPECT_EQ(MethodName(Method::kGiSelect), "GI-Select");
  EXPECT_EQ(MethodName(Method::kDiscord), "Discord");
}

TEST(MethodsTest, FactoryBuildsEveryMethod) {
  for (Method m : kAllMethods) {
    auto det = MakeMethod(m);
    ASSERT_NE(det, nullptr);
    EXPECT_FALSE(det->name().empty());
  }
}

// -------------------------------------------------------- experiment runner

TEST(ExperimentTest, EvaluationSeriesAreDeterministic) {
  const auto a =
      MakeEvaluationSeries(datasets::UcrDataset::kWafer, 3, 2020);
  const auto b =
      MakeEvaluationSeries(datasets::UcrDataset::kWafer, 3, 2020);
  ASSERT_EQ(a.size(), 3u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].values, b[i].values);
    EXPECT_EQ(a[i].anomaly, b[i].anomaly);
  }
}

TEST(ExperimentTest, LargerCountExtendsSameSeries) {
  const auto small =
      MakeEvaluationSeries(datasets::UcrDataset::kTrace, 2, 7);
  const auto large =
      MakeEvaluationSeries(datasets::UcrDataset::kTrace, 4, 7);
  EXPECT_EQ(small[0].values, large[0].values);
  EXPECT_EQ(small[1].values, large[1].values);
}

TEST(ExperimentTest, RunsEndToEndOnSmallConfig) {
  ExperimentConfig cfg;
  cfg.series_per_dataset = 2;
  cfg.method_config.ensemble_size = 8;
  const datasets::UcrDataset ds[] = {datasets::UcrDataset::kGunPoint};
  const Method methods[] = {Method::kProposed, Method::kGiFix};
  const auto result = RunExperiment(ds, methods, cfg);

  const auto& proposed = result.Get(ds[0], Method::kProposed);
  const auto& fix = result.Get(ds[0], Method::kGiFix);
  EXPECT_EQ(proposed.scores.size(), 2u);
  EXPECT_EQ(fix.scores.size(), 2u);
  for (double s : proposed.scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

}  // namespace
}  // namespace egi::eval
