#include "egi/telemetry.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "egi/session.h"

namespace egi::telemetry {
namespace {

// ------------------------------------------------- minimal JSON validator
//
// Enough of RFC 8259 to certify MetricsJson output: objects, arrays,
// strings with escapes, numbers, true/false/null. Returns false instead of
// diagnosing — a test that trips it prints the offending document anyway.

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               text_[pos_ - 1]));
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string_view text_;
  size_t pos_ = 0;
};

// ------------------------------------------------------------------ metrics

TEST(TelemetryTest, CounterFoldsShardedAdds) {
  Registry reg(/*enabled=*/true);
  Counter* c = reg.GetCounter("test.counter");
  EXPECT_EQ(c->Value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(TelemetryTest, GetReturnsStablePointerPerName) {
  Registry reg(/*enabled=*/true);
  Counter* a = reg.GetCounter("same.name");
  Counter* b = reg.GetCounter("same.name");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("other.name"));
  // Names are per-kind namespaces; a gauge may share a counter's name.
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(reg.GetGauge("same.name")));
}

TEST(TelemetryTest, CounterFoldMatchesAcrossThreads) {
  Registry reg(/*enabled=*/true);
  Counter* c = reg.GetCounter("threaded");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c] {
      for (int i = 0; i < kAddsPerThread; ++i) c->Add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(TelemetryTest, GaugeSetAndAdd) {
  Registry reg(/*enabled=*/true);
  Gauge* g = reg.GetGauge("depth");
  g->Set(7);
  EXPECT_EQ(g->Value(), 7);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 4);
}

TEST(TelemetryTest, DisabledRegistryRecordsNothing) {
  Registry reg(/*enabled=*/false);
  Counter* c = reg.GetCounter("c");
  Gauge* g = reg.GetGauge("g");
  Histogram* h = reg.GetHistogram("h");
  c->Add(5);
  g->Set(5);
  h->Record(5);
  { ScopedTimer timer(h); }
  reg.journal().Emit("event", {{"k", "v"}});
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Snapshot().count, 0u);
  EXPECT_EQ(reg.journal().emitted(), 0u);
}

TEST(TelemetryTest, SetEnabledTogglesRecordingAtRuntime) {
  Registry reg(/*enabled=*/true);
  Counter* c = reg.GetCounter("c");
  c->Add();
  reg.SetEnabled(false);
  c->Add();
  reg.SetEnabled(true);
  c->Add();
  EXPECT_EQ(c->Value(), 2u);
}

TEST(TelemetryTest, ScopedTimerRecordsOneSample) {
  Registry reg(/*enabled=*/true);
  Histogram* h = reg.GetHistogram("lat");
  { ScopedTimer timer(h); }
  const HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 1u);
  // Null histogram is an explicit no-op (registry lookups can't fail, but
  // embedders may pass a conditional pointer).
  { ScopedTimer timer(nullptr); }
}

TEST(TelemetryTest, ResetForTestZeroesEverything) {
  Registry reg(/*enabled=*/true);
  reg.GetCounter("c")->Add(3);
  reg.GetGauge("g")->Set(3);
  reg.GetHistogram("h")->Record(3);
  reg.journal().Emit("e", {});
  reg.ResetForTest();
  EXPECT_EQ(reg.GetCounter("c")->Value(), 0u);
  EXPECT_EQ(reg.GetGauge("g")->Value(), 0);
  EXPECT_EQ(reg.GetHistogram("h")->Snapshot().count, 0u);
  EXPECT_TRUE(reg.Snapshot().events.empty());
}

// ------------------------------------------------------------------ journal

TEST(TelemetryTest, JournalStampsSequencesAndFansOut) {
  Registry reg(/*enabled=*/true);
  auto extra = std::make_shared<RingSink>(8);
  reg.journal().AddSink(extra);
  reg.journal().Emit("first", {{"a", "1"}});
  reg.journal().Emit("second", {{"b", "2"}, {"c", "3"}});

  const auto events = extra->Tail();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "first");
  EXPECT_EQ(events[1].name, "second");
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_GT(events[0].unix_seconds, 0.0);
  ASSERT_EQ(events[1].fields.size(), 2u);
  EXPECT_EQ(events[1].fields[0].first, "b");
  EXPECT_EQ(events[1].fields[0].second, "2");
  // The registry's own default ring saw the same events.
  EXPECT_EQ(reg.Snapshot().events.size(), 2u);
}

TEST(TelemetryTest, RingSinkKeepsMostRecentInOrder) {
  RingSink ring(3);
  for (int i = 0; i < 7; ++i) {
    Event e;
    e.seq = static_cast<uint64_t>(i);
    e.name = "e" + std::to_string(i);
    ring.Append(e);
  }
  const auto tail = ring.Tail();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].name, "e4");
  EXPECT_EQ(tail[1].name, "e5");
  EXPECT_EQ(tail[2].name, "e6");
}

TEST(TelemetryTest, JsonLinesFileSinkWritesParsableLines) {
  const std::string path =
      testing::TempDir() + "/telemetry_sink_test.jsonl";
  std::remove(path.c_str());
  {
    Registry reg(/*enabled=*/true);
    auto sink = std::make_shared<JsonLinesFileSink>(path);
    ASSERT_TRUE(sink->ok());
    reg.journal().AddSink(sink);
    reg.journal().Emit("checkpoint.save", {{"bytes", "123"}});
    reg.journal().Emit("weird", {{"quote\"key", "back\\slash\nnewline"}});
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(JsonValidator(line).Valid()) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(TelemetryTest, EventToJsonEscapesFieldValues) {
  Event e;
  e.seq = 1;
  e.unix_seconds = 1723100000.5;
  e.name = "na\"me";
  e.fields = {{"k\\ey", "v\"al\nue"}};
  const std::string json = e.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
}

// --------------------------------------------------------------- rendering

TEST(TelemetryTest, ToJsonIsValidAndEscapesMetricNames) {
  Registry reg(/*enabled=*/true);
  // Hostile names: a spec string with quotes/backslashes could end up in a
  // metric name via an embedder; rendering must stay valid JSON regardless.
  reg.GetCounter("plain.counter")->Add(2);
  reg.GetCounter("quo\"te\\name")->Add(1);
  reg.GetGauge("gauge.bytes")->Set(-5);
  reg.GetHistogram("hist.seconds")->RecordSeconds(0.001);
  reg.journal().Emit("ev\"ent", {{"field", "va\\lue"}});

  const std::string json = reg.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"plain.counter\":2"), std::string::npos);
  EXPECT_NE(json.find("\"gauge.bytes\":-5"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(TelemetryTest, SnapshotIsSortedByName) {
  Registry reg(/*enabled=*/true);
  reg.GetCounter("zebra")->Add(1);
  reg.GetCounter("alpha")->Add(1);
  reg.GetCounter("mid")->Add(1);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zebra");
}

// The public-facade spelling: Session::MetricsJson() renders the global
// registry, after real instrumented work has run through it.
TEST(TelemetryTest, SessionMetricsJsonCoversInstrumentedLayers) {
  auto session = Session::Open("ensemble:wmax=6,amax=6,n=8");
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  std::vector<double> series(400);
  for (size_t i = 0; i < series.size(); ++i) {
    series[i] = std::sin(static_cast<double>(i) / 9.0) +
                (i == 250 ? 3.0 : 0.0);
  }
  ASSERT_TRUE(session->Detect(series, 50, 2).ok());
  ASSERT_TRUE(session->Score(series, 50).ok());

  const std::string json = Session::MetricsJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  if (telemetry::Enabled()) {
    EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
    EXPECT_NE(json.find("session.detect_calls"), std::string::npos);
    EXPECT_NE(json.find("ensemble.runs"), std::string::npos);
    EXPECT_NE(json.find("session.detect_seconds"), std::string::npos);
  } else {
    // EGI_TELEMETRY=0 leg: the document is still valid, just empty.
    EXPECT_NE(json.find("\"enabled\":false"), std::string::npos);
  }
}

}  // namespace
}  // namespace egi::telemetry
