#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "datasets/random_walk.h"
#include "discord/discords.h"
#include "discord/hotsax.h"
#include "discord/matrix_profile.h"
#include "util/rng.h"

namespace egi::discord {
namespace {

TEST(HotSaxTest, ValidatesArguments) {
  std::vector<double> v(10, 0.0);
  EXPECT_FALSE(FindDiscordsHotSax(v, 1, 1).ok());
  EXPECT_FALSE(FindDiscordsHotSax(v, 11, 1).ok());
}

TEST(HotSaxTest, FindsPlantedAnomaly) {
  Rng rng(5);
  std::vector<double> v(500);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 20.0) +
           0.05 * rng.Gaussian();
  }
  for (size_t i = 250; i < 260; ++i) v[i] = 3.0;  // structural break

  auto discords = FindDiscordsHotSax(v, 20, 1);
  ASSERT_TRUE(discords.ok());
  ASSERT_EQ(discords->size(), 1u);
  EXPECT_GE((*discords)[0].position + 20, 250u);
  EXPECT_LE((*discords)[0].position, 260u);
}

// HOTSAX is a search strategy, not an approximation: its discord must match
// the brute-force matrix-profile argmax.
class HotSaxEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HotSaxEquivalenceTest, Top1MatchesMatrixProfileArgmax) {
  Rng rng(GetParam());
  const auto v = datasets::MakeRandomWalk(180, rng);
  const size_t m = 12;

  auto mp = ComputeMatrixProfileBrute(v, m);
  ASSERT_TRUE(mp.ok());
  auto expected = TopKDiscords(*mp, 1);
  ASSERT_EQ(expected.size(), 1u);

  auto got = FindDiscordsHotSax(v, m, 1);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 1u);
  // Distances must agree; positions may differ only under exact ties.
  EXPECT_NEAR((*got)[0].distance, expected[0].distance, 1e-6);
}

TEST_P(HotSaxEquivalenceTest, TopKDistancesMatch) {
  Rng rng(GetParam() ^ 0x5555);
  const auto v = datasets::MakeRandomWalk(150, rng);
  const size_t m = 10;

  auto mp = ComputeMatrixProfileBrute(v, m);
  ASSERT_TRUE(mp.ok());
  auto expected = TopKDiscords(*mp, 3);
  auto got = FindDiscordsHotSax(v, m, 3);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR((*got)[i].distance, expected[i].distance, 1e-6) << "k=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HotSaxEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(HotSaxTest, NonOverlappingTopK) {
  Rng rng(33);
  const auto v = datasets::MakeRandomWalk(300, rng);
  auto discords = FindDiscordsHotSax(v, 15, 4);
  ASSERT_TRUE(discords.ok());
  for (size_t i = 0; i < discords->size(); ++i) {
    for (size_t j = i + 1; j < discords->size(); ++j) {
      const size_t gap = (*discords)[i].position > (*discords)[j].position
                             ? (*discords)[i].position - (*discords)[j].position
                             : (*discords)[j].position - (*discords)[i].position;
      EXPECT_GE(gap, 15u);
    }
  }
}

}  // namespace
}  // namespace egi::discord
