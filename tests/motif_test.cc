#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/motif.h"
#include "datasets/physio.h"
#include "ts/window.h"
#include "util/rng.h"

namespace egi::core {
namespace {

std::vector<double> PeriodicSeries(size_t len, double period) {
  std::vector<double> v(len);
  for (size_t i = 0; i < len; ++i) {
    v[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / period) +
           0.3 * std::sin(4.0 * M_PI * static_cast<double>(i) / period);
  }
  return v;
}

MotifParams DefaultParams(size_t window) {
  MotifParams p;
  p.gi.window_length = window;
  p.gi.paa_size = 4;
  p.gi.alphabet_size = 4;
  return p;
}

TEST(MotifTest, FindsRepeatingPatternInPeriodicSeries) {
  const auto series = PeriodicSeries(2000, 100.0);
  auto motifs = DiscoverMotifs(series, DefaultParams(100));
  ASSERT_TRUE(motifs.ok()) << motifs.status();
  ASSERT_FALSE(motifs->empty());
  const auto& top = (*motifs)[0];
  EXPECT_GE(top.instances.size(), 2u);
  EXPECT_GT(top.coverage, 0.2);
}

TEST(MotifTest, InstancesAreInSeriesOrderAndInBounds) {
  const auto series = PeriodicSeries(1500, 75.0);
  auto motifs = DiscoverMotifs(series, DefaultParams(75));
  ASSERT_TRUE(motifs.ok());
  for (const auto& m : *motifs) {
    for (size_t i = 0; i < m.instances.size(); ++i) {
      EXPECT_LE(m.instances[i].end(), series.size());
      if (i > 0) {
        EXPECT_LT(m.instances[i - 1].start, m.instances[i].start);
      }
    }
  }
}

TEST(MotifTest, RankedByInstanceCount) {
  Rng rng(17);
  const auto series = datasets::MakeLongEcg(6000, rng);
  auto p = DefaultParams(250);
  p.top_k = 10;
  auto motifs = DiscoverMotifs(series, p);
  ASSERT_TRUE(motifs.ok());
  for (size_t i = 1; i < motifs->size(); ++i) {
    EXPECT_GE((*motifs)[i - 1].instances.size(),
              (*motifs)[i].instances.size());
  }
}

TEST(MotifTest, TopKLimitRespected) {
  const auto series = PeriodicSeries(3000, 60.0);
  auto p = DefaultParams(60);
  p.top_k = 2;
  auto motifs = DiscoverMotifs(series, p);
  ASSERT_TRUE(motifs.ok());
  EXPECT_LE(motifs->size(), 2u);
}

TEST(MotifTest, MinInstancesFilters) {
  const auto series = PeriodicSeries(800, 80.0);
  auto p = DefaultParams(80);
  p.min_instances = 1000;  // impossible
  auto motifs = DiscoverMotifs(series, p);
  ASSERT_TRUE(motifs.ok());
  EXPECT_TRUE(motifs->empty());
}

TEST(MotifTest, NoMotifsInStructurelessData) {
  // Pure random walk with a long window: few, weak repeats at best.
  Rng rng(5);
  std::vector<double> v(600);
  double acc = 0.0;
  for (auto& x : v) {
    acc += rng.Gaussian();
    x = acc;
  }
  auto p = DefaultParams(150);
  p.gi.paa_size = 8;
  p.gi.alphabet_size = 8;  // fine resolution: random walks rarely repeat
  auto motifs = DiscoverMotifs(v, p);
  ASSERT_TRUE(motifs.ok());
  for (const auto& m : *motifs) {
    EXPECT_LT(m.coverage, 0.9);  // never "everything is one motif"
  }
}

TEST(MotifTest, WordsRenderTheRuleExpansion) {
  const auto series = PeriodicSeries(1200, 100.0);
  auto motifs = DiscoverMotifs(series, DefaultParams(100));
  ASSERT_TRUE(motifs.ok());
  ASSERT_FALSE(motifs->empty());
  const auto& top = (*motifs)[0];
  // words = token_span SAX words separated by spaces, each of length w.
  size_t word_count = 1;
  for (char c : top.words) {
    if (c == ' ') ++word_count;
  }
  EXPECT_EQ(word_count, top.token_span);
}

TEST(MotifTest, InvalidParamsRejected) {
  std::vector<double> v(100, 0.0);
  MotifParams p;
  p.gi.window_length = 200;  // longer than the series
  EXPECT_FALSE(DiscoverMotifs(v, p).ok());
}

TEST(MotifTest, MotifsAndAnomaliesAreComplementary) {
  // Plant a one-off bump in an otherwise periodic series: the motif
  // instances should not cover the anomalous region.
  auto series = PeriodicSeries(2000, 100.0);
  for (size_t i = 1000; i < 1100; ++i) series[i] = 3.0;

  auto motifs = DiscoverMotifs(series, DefaultParams(100));
  ASSERT_TRUE(motifs.ok());
  ASSERT_FALSE(motifs->empty());
  const ts::Window anomaly{1000, 100};
  size_t overlapping = 0;
  for (const auto& inst : (*motifs)[0].instances) {
    if (ts::OverlapLength(inst, anomaly) > 50) ++overlapping;
  }
  EXPECT_EQ(overlapping, 0u)
      << "top motif claims the anomalous region as a repeat";
}

}  // namespace
}  // namespace egi::core
