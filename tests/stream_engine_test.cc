#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "datasets/random_walk.h"
#include "serialize/format.h"
#include "stream/engine.h"
#include "util/rng.h"

namespace egi::stream {
namespace {

StreamDetectorOptions SmallOptions() {
  StreamDetectorOptions opt;
  opt.ensemble.window_length = 32;
  opt.ensemble.wmax = 5;
  opt.ensemble.amax = 5;
  opt.ensemble.ensemble_size = 8;
  opt.ensemble.seed = 42;
  opt.buffer_capacity = 192;
  opt.refit_interval = 48;
  return opt;
}

std::vector<std::vector<double>> MakeStreams(size_t count, size_t length) {
  std::vector<std::vector<double>> out;
  for (size_t i = 0; i < count; ++i) {
    Rng rng(100 + i);
    out.push_back(datasets::MakeRandomWalk(length, rng));
  }
  return out;
}

// Runs `num_streams` independent series through an engine at the given
// thread count, chunked into per-stream batches, and returns every stream's
// callback-observed score sequence.
std::vector<std::vector<ScoredPoint>> RunEngine(
    const std::vector<std::vector<double>>& data, int threads,
    size_t chunk = 50) {
  StreamEngineOptions opt;
  opt.detector = SmallOptions();
  opt.parallelism = exec::Parallelism::Fixed(threads);
  StreamEngine engine(opt);

  std::vector<std::vector<ScoredPoint>> observed(data.size());
  for (size_t s = 0; s < data.size(); ++s) {
    const StreamId id = engine.AddStream();
    EXPECT_EQ(id, s);
    engine.SetCallback(id, [&observed](StreamId sid, const ScoredPoint& pt) {
      observed[sid].push_back(pt);  // one worker per stream: no lock needed
    });
  }

  const size_t length = data[0].size();
  for (size_t off = 0; off < length; off += chunk) {
    const size_t len = std::min(chunk, length - off);
    std::vector<StreamBatch> batches;
    for (size_t s = 0; s < data.size(); ++s) {
      batches.push_back(
          StreamBatch{s, std::span<const double>(data[s]).subspan(off, len)});
    }
    engine.Ingest(batches);
  }
  return observed;
}

void ExpectSameScores(const std::vector<std::vector<ScoredPoint>>& a,
                      const std::vector<std::vector<ScoredPoint>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s].size(), b[s].size());
    for (size_t i = 0; i < a[s].size(); ++i) {
      ASSERT_EQ(a[s][i].index, b[s][i].index);
      ASSERT_EQ(a[s][i].score, b[s][i].score) << "stream " << s << " pt " << i;
      ASSERT_EQ(a[s][i].scored, b[s][i].scored);
      ASSERT_EQ(a[s][i].provisional, b[s][i].provisional);
      ASSERT_EQ(a[s][i].refit, b[s][i].refit);
    }
  }
}

// Sharding across the pool must not change any stream's output: results at
// 2 and 4 threads are bitwise-identical to the single-threaded run, which
// in turn matches a standalone StreamDetector fed the same points.
TEST(StreamEngineTest, PerStreamResultsIdenticalForEveryThreadCount) {
  const auto data = MakeStreams(5, 400);
  const auto serial = RunEngine(data, 1);

  for (const int threads : {2, 4}) {
    ExpectSameScores(serial, RunEngine(data, threads));
  }

  for (size_t s = 0; s < data.size(); ++s) {
    StreamDetector standalone(SmallOptions());
    const auto direct = standalone.Ingest(data[s]);
    ASSERT_EQ(direct.size(), serial[s].size());
    for (size_t i = 0; i < direct.size(); ++i) {
      ASSERT_EQ(direct[i].score, serial[s][i].score);
      ASSERT_EQ(direct[i].refit, serial[s][i].refit);
    }
  }
}

TEST(StreamEngineTest, CallbackSeesEveryPointInOrder) {
  const auto data = MakeStreams(3, 120);
  const auto observed = RunEngine(data, 4, /*chunk=*/7);
  for (size_t s = 0; s < data.size(); ++s) {
    ASSERT_EQ(observed[s].size(), data[s].size());
    for (size_t i = 0; i < observed[s].size(); ++i) {
      EXPECT_EQ(observed[s][i].index, i);
      EXPECT_EQ(observed[s][i].value, data[s][i]);
    }
  }
}

TEST(StreamEngineTest, SingleStreamIngestReturnsScores) {
  StreamEngineOptions opt;
  opt.detector = SmallOptions();
  opt.parallelism = exec::Parallelism::Serial();
  StreamEngine engine(opt);
  const StreamId id = engine.AddStream();

  Rng rng(9);
  const auto series = datasets::MakeRandomWalk(100, rng);
  const auto scored = engine.Ingest(id, series);
  ASSERT_EQ(scored.size(), series.size());
  EXPECT_EQ(engine.detector(id).total_appended(), series.size());
  EXPECT_TRUE(engine.detector(id).fitted());
}

TEST(StreamEngineTest, GuardedSaveAllBracketsEverySection) {
  StreamEngineOptions opt;
  opt.detector = SmallOptions();
  opt.parallelism = exec::Parallelism::Serial();
  StreamEngine engine(opt);
  const auto data = MakeStreams(3, 100);
  for (size_t s = 0; s < data.size(); ++s) {
    engine.AddStream();
    engine.Ingest(s, data[s]);
  }

  std::vector<std::pair<StreamId, bool>> calls;
  const auto blob = engine.SaveAll([&](StreamId id, bool acquire) {
    calls.emplace_back(id, acquire);
  });
  // Serial save: acquire/release strictly bracket each section, one pair
  // per stream, and the guarded blob is byte-identical to the plain one.
  ASSERT_EQ(calls.size(), 6u);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(calls[2 * s], std::make_pair(StreamId(s), true));
    EXPECT_EQ(calls[2 * s + 1], std::make_pair(StreamId(s), false));
  }
  EXPECT_EQ(blob, engine.SaveAll());
}

TEST(StreamEngineTest, CheckpointUnderLoadCapturesConsistentSections) {
  // The daemon's checkpoint-under-load pattern: one thread keeps ingesting
  // (under per-stream locks), another runs SaveAll with a guard taking the
  // same locks. Every captured section must be a consistent point-in-time
  // snapshot: restoring it and replaying the remaining feed must match a
  // clean detector fed the same prefix + remainder bitwise.
  constexpr size_t kStreams = 4;
  constexpr size_t kPoints = 600;
  constexpr size_t kChunk = 25;
  const auto data = MakeStreams(kStreams, kPoints);

  StreamEngineOptions opt;
  opt.detector = SmallOptions();
  opt.parallelism = exec::Parallelism::Fixed(2);
  StreamEngine engine(opt);
  for (size_t s = 0; s < kStreams; ++s) engine.AddStream();

  std::vector<std::mutex> locks(kStreams);
  std::atomic<bool> done{false};
  std::vector<std::vector<uint8_t>> checkpoints;

  std::thread checkpointer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      checkpoints.push_back(engine.SaveAll([&](StreamId id, bool acquire) {
        if (acquire) {
          locks[id].lock();
        } else {
          locks[id].unlock();
        }
      }));
    }
  });

  for (size_t off = 0; off < kPoints; off += kChunk) {
    const size_t len = std::min(kChunk, kPoints - off);
    for (size_t s = 0; s < kStreams; ++s) {
      std::lock_guard<std::mutex> hold(locks[s]);
      engine.Ingest(s, std::span<const double>(data[s]).subspan(off, len));
    }
  }
  done.store(true, std::memory_order_relaxed);
  checkpointer.join();
  ASSERT_FALSE(checkpoints.empty());

  // Verify a sample of captured checkpoints (all when few): restore, note
  // each stream's position, replay the tail, and demand bitwise identity
  // with an uninterrupted reference run.
  const auto reference = RunEngine(data, /*threads=*/1);
  size_t verified = 0;
  const size_t step = std::max<size_t>(1, checkpoints.size() / 8);
  for (size_t c = 0; c < checkpoints.size(); c += step) {
    StreamEngine restored(opt);
    ASSERT_TRUE(restored.LoadAll(checkpoints[c]).ok()) << "checkpoint " << c;
    ASSERT_EQ(restored.num_streams(), kStreams);
    for (size_t s = 0; s < kStreams; ++s) {
      const uint64_t at = restored.detector(s).total_appended();
      ASSERT_LE(at, kPoints);
      // Ingest chunks are all-or-nothing under the lock, so a consistent
      // section can only land on a chunk boundary; a torn section would
      // surface here as a mid-chunk position (or as score divergence below).
      EXPECT_EQ(at % kChunk, 0u) << "checkpoint " << c << " stream " << s;
      const auto tail =
          std::span<const double>(data[s]).subspan(static_cast<size_t>(at));
      const auto continued = restored.Ingest(s, tail);
      ASSERT_EQ(continued.size(), kPoints - at);
      for (size_t i = 0; i < continued.size(); ++i) {
        ASSERT_EQ(continued[i].score, reference[s][at + i].score)
            << "checkpoint " << c << " stream " << s << " pt " << i;
        ASSERT_EQ(continued[i].scored, reference[s][at + i].scored);
      }
    }
    ++verified;
  }
  EXPECT_GE(verified, 1u);
}

TEST(StreamEngineTest, PerStreamOptionsOverrideDefaults) {
  StreamEngineOptions opt;
  opt.detector = SmallOptions();
  StreamEngine engine(opt);
  auto custom = SmallOptions();
  custom.refit_interval = 10;
  const StreamId a = engine.AddStream();
  const StreamId b = engine.AddStream(custom);
  EXPECT_EQ(engine.num_streams(), 2u);
  EXPECT_EQ(engine.detector(a).options().refit_interval,
            opt.detector.refit_interval);
  EXPECT_EQ(engine.detector(b).options().refit_interval, 10u);
}

// Per-stream save (the unit of shard migration) must be byte-identical to
// the stream's section inside a whole-engine SaveAll blob — one format,
// two granularities.
TEST(StreamEngineTest, SaveStreamMatchesEngineBlobSection) {
  StreamEngineOptions opt;
  opt.detector = SmallOptions();
  opt.parallelism = exec::Parallelism::Serial();
  StreamEngine engine(opt);
  const auto data = MakeStreams(3, 150);
  for (size_t s = 0; s < data.size(); ++s) {
    engine.AddStream();
    engine.Ingest(s, data[s]);
  }

  const auto blob = engine.SaveAll();
  for (size_t s = 0; s < data.size(); ++s) {
    std::vector<uint8_t> section;
    size_t count = 0;
    ASSERT_TRUE(
        serialize::ExtractEngineSection(blob, s, &section, &count).ok());
    EXPECT_EQ(count, data.size());
    auto standalone = engine.SaveStream(s);
    ASSERT_TRUE(standalone.ok()) << standalone.status();
    EXPECT_EQ(section, *standalone) << "stream " << s;
  }
  std::vector<uint8_t> section;
  EXPECT_FALSE(serialize::ExtractEngineSection(blob, 99, &section).ok());
  EXPECT_FALSE(engine.SaveStream(99).ok());
}

// A stream moved between engines via SaveStream/LoadStream continues
// scoring bitwise-identically to one that never moved.
TEST(StreamEngineTest, SaveLoadStreamContinuesBitwiseIdentically) {
  StreamEngineOptions opt;
  opt.detector = SmallOptions();
  opt.parallelism = exec::Parallelism::Serial();
  const auto data = MakeStreams(1, 300);
  const std::span<const double> first(data[0].data(), 170);
  const std::span<const double> rest(data[0].data() + 170, 130);

  StreamEngine stayed(opt);
  stayed.AddStream();
  stayed.Ingest(0, first);

  StreamEngine source(opt);
  source.AddStream();
  source.Ingest(0, first);
  auto blob = source.SaveStream(0);
  ASSERT_TRUE(blob.ok()) << blob.status();

  StreamEngine target(opt);
  target.AddStream();
  ASSERT_TRUE(target.LoadStream(0, *blob).ok());
  EXPECT_EQ(target.detector(0).total_appended(), first.size());

  const auto expected = stayed.Ingest(0, rest);
  const auto migrated = target.Ingest(0, rest);
  ASSERT_EQ(expected.size(), migrated.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].score, migrated[i].score) << "point " << i;
    ASSERT_EQ(expected[i].refit, migrated[i].refit);
  }
  EXPECT_FALSE(target.LoadStream(7, *blob).ok());  // bounds-checked
}

}  // namespace
}  // namespace egi::stream
