#include <gtest/gtest.h>

#include <vector>

#include "core/anomaly.h"
#include "ts/window.h"

namespace egi::core {
namespace {

TEST(FindDensityAnomaliesTest, SingleMinimumFound) {
  std::vector<double> density{5, 5, 5, 1, 5, 5, 5, 5};
  auto out = FindDensityAnomalies(density, /*window_length=*/2, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].position, 3u);
  EXPECT_EQ(out[0].length, 2u);
  EXPECT_DOUBLE_EQ(out[0].severity, -1.0);
  EXPECT_EQ(out[0].run_length, 1u);
}

TEST(FindDensityAnomaliesTest, MinimumRunReportsRunStart) {
  std::vector<double> density{5, 5, 0, 0, 0, 5, 5, 5};
  auto out = FindDensityAnomalies(density, 2, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].position, 2u);
  EXPECT_EQ(out[0].run_length, 3u);
}

TEST(FindDensityAnomaliesTest, CandidatesDoNotOverlap) {
  std::vector<double> density{9, 9, 0, 9, 9, 9, 9, 9, 9, 1,
                              9, 9, 9, 9, 9, 9, 9, 2, 9, 9};
  const size_t n = 3;
  auto out = FindDensityAnomalies(density, n, 3);
  ASSERT_EQ(out.size(), 3u);
  for (size_t i = 0; i < out.size(); ++i) {
    for (size_t j = i + 1; j < out.size(); ++j) {
      EXPECT_FALSE(ts::Overlaps(out[i].window(), out[j].window()))
          << i << " vs " << j;
    }
  }
  // Ranked ascending by density value (0, then 1, then 2).
  EXPECT_EQ(out[0].position, 2u);
  EXPECT_EQ(out[1].position, 9u);
  EXPECT_EQ(out[2].position, 17u);
  EXPECT_GE(out[0].severity, out[1].severity);
  EXPECT_GE(out[1].severity, out[2].severity);
}

TEST(FindDensityAnomaliesTest, MaskingSuppressesNeighbours) {
  // Second-lowest value right next to the minimum must be skipped.
  std::vector<double> density{9, 9, 0, 1, 9, 9, 9, 9, 9, 2, 9, 9};
  auto out = FindDensityAnomalies(density, 3, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].position, 2u);
  // Position 3 (value 1) is masked by the first candidate; the next
  // candidate is the value-2 point at position 9.
  EXPECT_EQ(out[1].position, 9u);
}

TEST(FindDensityAnomaliesTest, EdgeDipsOutsideValidRegionIgnored) {
  // Zero-density points in the first/last (window-1) samples are coverage
  // artifacts; the detector must rank only the valid region [n-1, len-n].
  std::vector<double> density{0, 0, 9, 9, 5, 9, 9, 9, 0, 0};
  auto out = FindDensityAnomalies(density, 3, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].position, 4u);  // the value-5 dip, not the edge zeros
  EXPECT_DOUBLE_EQ(out[0].severity, -5.0);
}

TEST(FindDensityAnomaliesTest, MinimumAtValidRegionBoundary) {
  std::vector<double> density{9, 9, 9, 9, 0, 9, 9, 9};
  auto out = FindDensityAnomalies(density, 4, 1);
  ASSERT_EQ(out.size(), 1u);
  // t = 4 == len - n: the last fully-covered point, also the last valid
  // window start.
  EXPECT_EQ(out[0].position, 4u);
}

TEST(FindDensityAnomaliesTest, MaxCandidatesRespected) {
  std::vector<double> density(100, 5.0);
  density[10] = 0;
  density[40] = 1;
  density[70] = 2;
  auto out = FindDensityAnomalies(density, 5, 2);
  EXPECT_EQ(out.size(), 2u);
}

TEST(FindDensityAnomaliesTest, FewerCandidatesWhenEverythingMasked) {
  std::vector<double> density{1, 1, 1, 1};
  auto out = FindDensityAnomalies(density, 4, 5);
  // One window fits; after masking nothing remains.
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].position, 0u);
}

TEST(FindDensityAnomaliesTest, AllEqualCurveGivesSingleValidRun) {
  std::vector<double> density(20, 3.0);
  auto out = FindDensityAnomalies(density, 4, 3);
  ASSERT_GE(out.size(), 1u);
  // The run spans the whole valid region [3, 16].
  EXPECT_EQ(out[0].position, 3u);
  EXPECT_EQ(out[0].run_length, 14u);
}

TEST(FindDensityAnomaliesTest, WindowEqualsSeriesLength) {
  std::vector<double> density{2, 1, 3};
  auto out = FindDensityAnomalies(density, 3, 2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].position, 0u);  // only valid start
}

TEST(FindDensityAnomaliesTest, SeverityIsNegatedDensity) {
  std::vector<double> density{4, 2, 4, 4};
  auto out = FindDensityAnomalies(density, 2, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].severity, -2.0);
}

}  // namespace
}  // namespace egi::core
