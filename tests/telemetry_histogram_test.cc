#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "egi/telemetry.h"

// Property tests for the histogram layout (ISSUE: merge associativity and
// commutativity, bucket boundary pins, shard-fold equivalence). The layout
// being a compile-time constant is what makes every property below hold
// exactly, not approximately.

namespace egi::telemetry {
namespace {

using Snap = HistogramSnapshot;

// Deterministic pseudo-random snapshot (seeded mt19937; property tests must
// be reproducible in CI).
Snap RandomSnapshot(uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<uint64_t> counts(0, 1000);
  std::uniform_int_distribution<uint64_t> nanos(0, Snap::kMaxTrackableNanos);
  Snap s;
  for (auto& b : s.buckets) b = counts(rng);
  for (const auto b : s.buckets) s.count += b;
  s.sum_nanos = counts(rng) * 1000;
  s.min_nanos = nanos(rng);
  s.max_nanos = std::max(s.min_nanos, nanos(rng));
  return s;
}

Snap Merged(Snap a, const Snap& b) {
  a.Merge(b);
  return a;
}

// ----------------------------------------------------------------- buckets

TEST(TelemetryHistogramTest, SmallValuesGetExactBuckets) {
  EXPECT_EQ(Snap::BucketIndex(0), 0u);
  EXPECT_EQ(Snap::BucketIndex(1), 1u);
  EXPECT_EQ(Snap::BucketIndex(2), 2u);
  EXPECT_EQ(Snap::BucketIndex(3), 3u);
  EXPECT_EQ(Snap::BucketIndex(4), 4u);
}

TEST(TelemetryHistogramTest, BucketBoundariesRoundTrip) {
  for (size_t i = 0; i < Snap::kNumBuckets; ++i) {
    const uint64_t lo = Snap::BucketLowerBound(i);
    EXPECT_EQ(Snap::BucketIndex(lo), i) << "lower bound of bucket " << i;
    if (i < Snap::kOverflowBucket) {
      const uint64_t hi = Snap::BucketUpperBound(i);
      EXPECT_EQ(Snap::BucketIndex(hi - 1), i) << "last value of bucket " << i;
      EXPECT_EQ(Snap::BucketIndex(hi), i + 1) << "first value past bucket "
                                              << i;
      EXPECT_LT(lo, hi) << "bucket " << i << " must be non-empty";
    }
  }
}

TEST(TelemetryHistogramTest, BucketsAreMonotoneOverSweep) {
  // Index must never decrease as the value grows (probe powers of two and
  // their neighbours, where the log-linear layout changes regime).
  std::vector<uint64_t> probes;
  for (int e = 0; e < 63; ++e) {
    const uint64_t v = uint64_t{1} << e;
    probes.insert(probes.end(), {v - 1, v, v + 1});
  }
  std::sort(probes.begin(), probes.end());
  size_t prev = 0;
  for (const uint64_t probe : probes) {
    const size_t idx = Snap::BucketIndex(probe);
    EXPECT_GE(idx, prev) << "value " << probe;
    EXPECT_LT(idx, Snap::kNumBuckets);
    prev = idx;
  }
}

TEST(TelemetryHistogramTest, OverflowPins) {
  EXPECT_EQ(Snap::BucketIndex(Snap::kMaxTrackableNanos),
            Snap::kOverflowBucket - 1);
  EXPECT_EQ(Snap::BucketIndex(Snap::kMaxTrackableNanos + 1),
            Snap::kOverflowBucket);
  EXPECT_EQ(Snap::BucketIndex(UINT64_MAX), Snap::kOverflowBucket);
  EXPECT_EQ(Snap::BucketUpperBound(Snap::kOverflowBucket), UINT64_MAX);
}

TEST(TelemetryHistogramTest, RecordSecondsEdgeCases) {
  Registry reg(/*enabled=*/true);
  Histogram* h = reg.GetHistogram("h");
  h->RecordSeconds(std::numeric_limits<double>::quiet_NaN());  // dropped
  h->RecordSeconds(-1.0);                                      // dropped
  EXPECT_EQ(h->Snapshot().count, 0u);

  h->RecordSeconds(0.0);                                       // bucket 0
  h->RecordSeconds(std::numeric_limits<double>::infinity());   // overflow
  const Snap snap = h->Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[Snap::kOverflowBucket], 1u);
  EXPECT_EQ(snap.min_nanos, 0u);
  EXPECT_EQ(snap.max_nanos, UINT64_MAX);
}

// ------------------------------------------------------------------ merges

TEST(TelemetryHistogramTest, MergeIsCommutative) {
  for (uint32_t seed = 0; seed < 20; ++seed) {
    const Snap a = RandomSnapshot(seed);
    const Snap b = RandomSnapshot(seed + 100);
    EXPECT_EQ(Merged(a, b), Merged(b, a)) << "seed " << seed;
  }
}

TEST(TelemetryHistogramTest, MergeIsAssociative) {
  for (uint32_t seed = 0; seed < 20; ++seed) {
    const Snap a = RandomSnapshot(seed);
    const Snap b = RandomSnapshot(seed + 100);
    const Snap c = RandomSnapshot(seed + 200);
    EXPECT_EQ(Merged(Merged(a, b), c), Merged(a, Merged(b, c)))
        << "seed " << seed;
  }
}

TEST(TelemetryHistogramTest, MergeWithEmptyIsIdentity) {
  const Snap a = RandomSnapshot(7);
  EXPECT_EQ(Merged(a, Snap{}), a);
  EXPECT_EQ(Merged(Snap{}, a), a);
}

// -------------------------------------------------------------- shard fold

// The same multiset of values recorded from 1 thread and from 8 threads
// folds to the SAME snapshot: every field of HistogramSnapshot is a
// commutative reduction (sums, min, max), so thread interleaving and shard
// assignment cannot show through.
TEST(TelemetryHistogramTest, ShardFoldEquivalentAtOneVsEightThreads) {
  std::mt19937 rng(42);
  std::uniform_int_distribution<uint64_t> dist(0, Snap::kMaxTrackableNanos);
  constexpr size_t kPerThread = 5000;
  constexpr size_t kThreads = 8;
  std::vector<uint64_t> values(kPerThread * kThreads);
  for (auto& v : values) v = dist(rng);

  Registry serial_reg(/*enabled=*/true);
  Histogram* serial = serial_reg.GetHistogram("h");
  for (const uint64_t v : values) serial->Record(v);

  Registry threaded_reg(/*enabled=*/true);
  Histogram* threaded = threaded_reg.GetHistogram("h");
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&values, threaded, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        threaded->Record(values[t * kPerThread + i]);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(serial->Snapshot(), threaded->Snapshot());
}

// --------------------------------------------------------------- quantiles

TEST(TelemetryHistogramTest, QuantileBasics) {
  Registry reg(/*enabled=*/true);
  Histogram* h = reg.GetHistogram("h");
  EXPECT_EQ(h->Snapshot().Quantile(0.5), 0.0);  // empty

  h->Record(1000000);  // 1 ms
  const Snap one = h->Snapshot();
  // A single observation: every quantile is clamped to the exact value.
  EXPECT_DOUBLE_EQ(one.Quantile(0.0), 1e-3);
  EXPECT_DOUBLE_EQ(one.Quantile(0.5), 1e-3);
  EXPECT_DOUBLE_EQ(one.Quantile(1.0), 1e-3);
}

TEST(TelemetryHistogramTest, QuantilesMonotoneAndWithinRange) {
  Registry reg(/*enabled=*/true);
  Histogram* h = reg.GetHistogram("h");
  std::mt19937 rng(9);
  std::uniform_int_distribution<uint64_t> dist(100, 50'000'000);
  uint64_t lo = UINT64_MAX, hi = 0;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = dist(rng);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    h->Record(v);
  }
  const Snap snap = h->Snapshot();
  double prev = 0.0;
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = snap.Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_GE(v, static_cast<double>(lo) * 1e-9);
    EXPECT_LE(v, static_cast<double>(hi) * 1e-9);
    prev = v;
  }
  EXPECT_GE(snap.MeanSeconds(), static_cast<double>(lo) * 1e-9);
  EXPECT_LE(snap.MeanSeconds(), static_cast<double>(hi) * 1e-9);
}

}  // namespace
}  // namespace egi::telemetry
