#!/usr/bin/env bash
# End-to-end smoke test for the egid daemon: boot → load → checkpoint →
# kill -9 → restart (restore-on-boot) → verify state survived → clean
# SIGTERM drain. CI runs this under `timeout` on every push; it is also
# handy locally:
#
#   tools/egid_smoke.sh build
#
# The only argument is the build directory holding the egid and loadgen
# binaries. Exits non-zero (with a FAIL line) on the first broken step.
set -u -o pipefail

BUILD_DIR=${1:-build}
EGID="$BUILD_DIR/egid"
LOADGEN="$BUILD_DIR/loadgen"
WORK=$(mktemp -d)
CKPT="$WORK/checkpoint.egis"
LOG="$WORK/egid.log"
EGID_PID=""

fail() {
  echo "FAIL: $*" >&2
  if [[ -s $LOG ]]; then
    echo "--- egid log ($LOG) ---" >&2
    cat "$LOG" >&2
  else
    echo "--- egid log is empty ---" >&2
  fi
  [[ -n $EGID_PID ]] && kill -9 "$EGID_PID" 2>/dev/null
  rm -rf "$WORK"
  exit 1
}

[[ -x $EGID ]] || fail "egid binary not found at $EGID"
[[ -x $LOADGEN ]] || fail "loadgen binary not found at $LOADGEN"

# Launch and parse the ready banner for the ephemeral ports.
start_egid() {
  "$EGID" --window=16 --buffer=256 --refit-interval=64 --workers=2 \
          --checkpoint="$CKPT" >"$LOG" 2>&1 &
  EGID_PID=$!
  for _ in $(seq 100); do
    grep -q '^egid ready' "$LOG" 2>/dev/null && break
    kill -0 "$EGID_PID" 2>/dev/null \
      || fail "egid (pid $EGID_PID) died during startup; its captured output follows"
    sleep 0.1
  done
  # Fail fast with the daemon's own stderr on a boot timeout — a generic
  # downstream curl error would hide what the daemon was stuck on.
  grep -q '^egid ready' "$LOG" \
    || fail "egid (pid $EGID_PID) did not print its ready banner within 10s; its captured output follows"
  HTTP_PORT=$(sed -n 's/^egid ready http=\([0-9]*\).*/\1/p' "$LOG" | tail -1)
  INGEST_PORT=$(sed -n 's/.*ingest=\([0-9]*\).*/\1/p' "$LOG" | tail -1)
  [[ -n $HTTP_PORT && -n $INGEST_PORT ]] || fail "could not parse ports"
}

http() {  # http METHOD PATH -> body on stdout
  local body
  if ! body=$(curl -sS -X "$1" "http://127.0.0.1:$HTTP_PORT$2"); then
    # Distinguish "daemon died" (dump its output) from "daemon up but the
    # request failed" so a crash does not surface as a generic curl error.
    if kill -0 "$EGID_PID" 2>/dev/null; then
      fail "curl $1 $2 failed but egid (pid $EGID_PID) is still running"
    else
      fail "egid (pid $EGID_PID) died before $1 $2; its captured output follows"
    fi
  fi
  printf '%s\n' "$body"
}

start_egid
echo "egid up: http=$HTTP_PORT ingest=$INGEST_PORT pid=$EGID_PID"

# A small load: 50 streams, enough points to score but quick to drain.
"$LOADGEN" --http-port="$HTTP_PORT" --ingest-port="$INGEST_PORT" \
           --streams=50 --conns=4 --batch=20 --rounds=3 --json \
  || fail "loadgen run"

http POST /v1/flush | grep -q '"flushed":true' || fail "flush"
DESCRIBE=$(http GET /v1/streams/0)
echo "$DESCRIBE" | grep -q '"accepted":60' || fail "expected 60 accepted: $DESCRIBE"
echo "$DESCRIBE" | grep -q '"scored":60' || fail "expected 60 scored: $DESCRIBE"

# /metrics must be valid JSON (the telemetry dump feeds dashboards).
http GET /metrics | python3 -m json.tool >/dev/null || fail "/metrics is not JSON"

# Checkpoint, then die without any shutdown path at all.
http POST /v1/checkpoint | grep -q '"bytes"' || fail "checkpoint request"
[[ -s $CKPT ]] || fail "checkpoint file missing"
kill -9 "$EGID_PID"
wait "$EGID_PID" 2>/dev/null
echo "killed egid with SIGKILL, restarting from $CKPT"

# Second life: restore-on-boot must bring all 50 streams back, scored.
start_egid
grep -q 'streams=50' "$LOG" || fail "restore-on-boot lost streams: $(tail -1 "$LOG")"
DESCRIBE=$(http GET /v1/streams/0)
echo "$DESCRIBE" | grep -q '"scored":60' || fail "restored stream lost points: $DESCRIBE"
http GET /healthz | grep -q '"status":"ok"' || fail "healthz after restore"

# Clean shutdown: SIGTERM drains and exits 0.
kill -TERM "$EGID_PID"
for _ in $(seq 300); do
  kill -0 "$EGID_PID" 2>/dev/null || break
  sleep 0.1
done
if wait "$EGID_PID"; then
  echo "egid drained cleanly"
else
  fail "egid exited non-zero on SIGTERM"
fi

rm -rf "$WORK"
echo "PASS: egid smoke (load, checkpoint, SIGKILL, restore, drain)"
