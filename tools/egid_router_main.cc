// egid-router — the sharding front door for a fleet of egid daemons.
//
// Speaks the same two planes as egid itself (HTTP/1.1 JSON control plane,
// length-prefixed binary frame ingest) and fans out to N backend shards by
// jump-consistent-hash of the stream id over a versioned shard map
// (src/router/). POST /v1/shards installs a new map at runtime and live-
// migrates every stream whose owner changes via per-stream checkpoint
// handoff — scores continue bitwise-identically across the move.
//
// Configuration is flags first, environment second (EGID_ROUTER_* twins):
//
//   egid_router --shards=127.0.0.1:8080:8081,127.0.0.1:8090:8091 \
//               --http-port=7080 --ingest-port=7081 --probe-interval=1
//
// On startup prints one line to stdout:
//   egid-router ready http=<port> ingest=<port> shards=<n>
// which the smoke script and loadgen parse to find ephemeral ports.
// SIGTERM/SIGINT drain: new frames get kDraining rejects, in-flight
// forwards finish, exit 0. The router holds no durable state — shards own
// their own checkpoints.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "router/router_core.h"
#include "service/server.h"
#include "util/env.h"

namespace {

egi::service::Server* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();  // one atomic store
}

// --name=value (or --name value) flag reader over argv, with an env twin.
struct Flags {
  int argc;
  char** argv;

  const char* Find(const char* name) const {
    const size_t len = std::strlen(name);
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) continue;
      if (std::strncmp(arg + 2, name, len) != 0) continue;
      if (arg[2 + len] == '=') return arg + 2 + len + 1;
      if (arg[2 + len] == '\0' && i + 1 < argc) return argv[i + 1];
    }
    return nullptr;
  }

  int64_t Int(const char* name, const char* env, int64_t fallback) const {
    if (const char* v = Find(name); v != nullptr) return std::atoll(v);
    return egi::GetEnvInt(env, fallback);
  }
  double Double(const char* name, const char* env, double fallback) const {
    if (const char* v = Find(name); v != nullptr) return std::atof(v);
    return egi::GetEnvDouble(env, fallback);
  }
  std::string Str(const char* name, const char* env,
                  const std::string& fallback) const {
    if (const char* v = Find(name); v != nullptr) return v;
    return egi::GetEnvString(env, fallback);
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: egid_router --shards=HOST:HTTP:INGEST[,...]\n"
      "                   [--http-port=N] [--ingest-port=N] [--bind=ADDR]\n"
      "                   [--channels-per-shard=N] [--acquire-timeout=SEC]\n"
      "                   [--migrate-timeout=SEC] [--probe-interval=SEC]\n"
      "                   [--probe-backoff-max=SEC] [--shard-timeout=SEC]\n"
      "Every flag has an EGID_ROUTER_* environment twin\n"
      "(EGID_ROUTER_SHARDS, EGID_ROUTER_HTTP_PORT, ...). Listener ports\n"
      "default to 0 = ephemeral; --probe-interval=0 disables probing.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      return Usage();
    }
  }
  const Flags flags{argc, argv};

  const std::string shard_spec =
      flags.Str("shards", "EGID_ROUTER_SHARDS", "");
  if (shard_spec.empty()) {
    std::fprintf(stderr, "egid_router: --shards is required\n");
    return Usage();
  }
  auto endpoints = egi::router::ParseEndpointList(shard_spec);
  if (!endpoints.ok()) {
    std::fprintf(stderr, "egid_router: %s\n",
                 endpoints.status().ToString().c_str());
    return 1;
  }

  egi::router::RouterOptions options;
  options.shards = std::move(*endpoints);
  options.channels_per_shard = static_cast<size_t>(
      flags.Int("channels-per-shard", "EGID_ROUTER_CHANNELS_PER_SHARD", 4));
  options.acquire_timeout_seconds =
      flags.Double("acquire-timeout", "EGID_ROUTER_ACQUIRE_TIMEOUT", 2.0);
  options.migrate_timeout_seconds =
      flags.Double("migrate-timeout", "EGID_ROUTER_MIGRATE_TIMEOUT", 10.0);
  options.probe_interval_seconds =
      flags.Double("probe-interval", "EGID_ROUTER_PROBE_INTERVAL", 1.0);
  options.probe_backoff_max_seconds =
      flags.Double("probe-backoff-max", "EGID_ROUTER_PROBE_BACKOFF_MAX", 5.0);
  options.factory = egi::router::TcpChannelFactory(
      flags.Double("shard-timeout", "EGID_ROUTER_SHARD_TIMEOUT", 5.0));

  auto router = egi::router::RouterCore::Create(std::move(options));
  if (!router.ok()) {
    std::fprintf(stderr, "egid_router: %s\n",
                 router.status().ToString().c_str());
    return 1;
  }

  egi::service::ServerOptions server_options;
  server_options.bind_address =
      flags.Str("bind", "EGID_ROUTER_BIND", "127.0.0.1");
  server_options.http_port = static_cast<int>(
      flags.Int("http-port", "EGID_ROUTER_HTTP_PORT", 0));
  server_options.ingest_port = static_cast<int>(
      flags.Int("ingest-port", "EGID_ROUTER_INGEST_PORT", 0));

  egi::service::Server server(router->get(), server_options);
  const egi::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "egid_router: %s\n", started.ToString().c_str());
    return 1;
  }

  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);  // peer resets surface as write errors

  std::printf("egid-router ready http=%d ingest=%d shards=%zu\n",
              server.http_port(), server.ingest_port(),
              (*router)->num_shards());
  std::fflush(stdout);

  const egi::Status drained = server.Wait();
  g_server = nullptr;
  if (!drained.ok()) {
    std::fprintf(stderr, "egid_router: %s\n", drained.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "egid_router: drained cleanly\n");
  return 0;
}
