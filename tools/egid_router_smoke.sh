#!/usr/bin/env bash
# End-to-end smoke test for the egid-router sharding front door: boot two
# egid shards behind one router, drive load through the router (zero
# rejects), install a 3-shard map mid-load (live migration must be
# invisible to the client), checkpoint fan-out, SIGKILL one shard under
# load (typed rejects, not stalls), restart it on the same ports, watch
# the health probes bring it back, and prove clean load again. Ends with a
# non-gated 1-shard vs 4-shard throughput A/B recorded in
# BENCH_router.json for the cross-PR trend. CI runs this under `timeout`;
# locally:
#
#   tools/egid_router_smoke.sh build
#
# The only argument is the build directory holding the egid, egid_router
# and loadgen binaries. Exits non-zero (with a FAIL line) on the first
# broken step.
set -u -o pipefail

BUILD_DIR=${1:-build}
EGID="$BUILD_DIR/egid"
ROUTER="$BUILD_DIR/egid_router"
LOADGEN="$BUILD_DIR/loadgen"
WORK=$(mktemp -d)
BENCH_OUT="${BENCH_OUT:-BENCH_router.json}"

# Shard state, indexed by shard number.
declare -a SHARD_PID SHARD_HTTP SHARD_INGEST
ROUTER_PID=""
ROUTER_HTTP=""
ROUTER_INGEST=""

dump_log() {  # dump_log LABEL PATH
  if [[ -s $2 ]]; then
    echo "--- $1 log ($2) ---" >&2
    cat "$2" >&2
  else
    echo "--- $1 log is empty ---" >&2
  fi
}

fail() {
  echo "FAIL: $*" >&2
  [[ -f $WORK/router.log ]] && dump_log "egid-router" "$WORK/router.log"
  for i in "${!SHARD_PID[@]}"; do
    [[ -f $WORK/shard$i.log ]] && dump_log "shard $i" "$WORK/shard$i.log"
  done
  kill_all
  rm -rf "$WORK"
  exit 1
}

kill_all() {
  [[ -n $ROUTER_PID ]] && kill -9 "$ROUTER_PID" 2>/dev/null
  for pid in "${SHARD_PID[@]:-}"; do
    [[ -n $pid ]] && kill -9 "$pid" 2>/dev/null
  done
  wait 2>/dev/null
}

[[ -x $EGID ]] || { echo "FAIL: egid binary not found at $EGID" >&2; exit 1; }
[[ -x $ROUTER ]] || { echo "FAIL: egid_router binary not found at $ROUTER" >&2; exit 1; }
[[ -x $LOADGEN ]] || { echo "FAIL: loadgen binary not found at $LOADGEN" >&2; exit 1; }

# wait_banner LABEL LOG PID PATTERN — fail fast with the process's captured
# stderr if it dies or never prints its ready banner.
wait_banner() {
  local label=$1 log=$2 pid=$3 pattern=$4
  for _ in $(seq 100); do
    grep -q "$pattern" "$log" 2>/dev/null && return 0
    kill -0 "$pid" 2>/dev/null \
      || fail "$label (pid $pid) died during startup; its captured output follows"
    sleep 0.1
  done
  fail "$label (pid $pid) did not print its ready banner within 10s"
}

# start_shard IDX [extra egid flags...] — boots shard IDX on its recorded
# ports (0 = fresh ephemeral) with its own checkpoint file, then records
# the ports parsed from the ready banner.
start_shard() {
  local idx=$1
  shift
  local log="$WORK/shard$idx.log"
  "$EGID" --window=16 --buffer=256 --refit-interval=64 --workers=2 \
          --checkpoint="$WORK/shard$idx.egis" \
          --http-port="${SHARD_HTTP[$idx]:-0}" \
          --ingest-port="${SHARD_INGEST[$idx]:-0}" \
          "$@" >"$log" 2>&1 &
  SHARD_PID[$idx]=$!
  wait_banner "shard $idx" "$log" "${SHARD_PID[$idx]}" '^egid ready'
  SHARD_HTTP[$idx]=$(sed -n 's/^egid ready http=\([0-9]*\).*/\1/p' "$log" | tail -1)
  SHARD_INGEST[$idx]=$(sed -n 's/.*ingest=\([0-9]*\).*/\1/p' "$log" | tail -1)
  [[ -n ${SHARD_HTTP[$idx]} && -n ${SHARD_INGEST[$idx]} ]] \
    || fail "could not parse shard $idx ports"
}

shard_endpoint() {  # shard_endpoint IDX -> HOST:HTTP:INGEST
  echo "127.0.0.1:${SHARD_HTTP[$1]}:${SHARD_INGEST[$1]}"
}

start_router() {  # start_router SHARDS_CSV
  "$ROUTER" --shards="$1" --probe-interval=0.2 --probe-backoff-max=0.5 \
            --acquire-timeout=2 >"$WORK/router.log" 2>&1 &
  ROUTER_PID=$!
  wait_banner "egid-router" "$WORK/router.log" "$ROUTER_PID" '^egid-router ready'
  ROUTER_HTTP=$(sed -n 's/^egid-router ready http=\([0-9]*\).*/\1/p' "$WORK/router.log" | tail -1)
  ROUTER_INGEST=$(sed -n 's/.*ingest=\([0-9]*\).*/\1/p' "$WORK/router.log" | tail -1)
  [[ -n $ROUTER_HTTP && -n $ROUTER_INGEST ]] || fail "could not parse router ports"
}

rhttp() {  # rhttp METHOD PATH [BODY] -> body on stdout
  local body
  if [[ $# -ge 3 ]]; then
    body=$(curl -sS -X "$1" --data-binary "$3" "http://127.0.0.1:$ROUTER_HTTP$2")
  else
    body=$(curl -sS -X "$1" "http://127.0.0.1:$ROUTER_HTTP$2")
  fi || {
    if kill -0 "$ROUTER_PID" 2>/dev/null; then
      fail "curl $1 $2 failed but egid-router (pid $ROUTER_PID) is still running"
    else
      fail "egid-router (pid $ROUTER_PID) died before $1 $2"
    fi
  }
  printf '%s\n' "$body"
}

json_field() {  # json_field KEY <<< JSON -> integer value
  sed -n "s/.*\"$1\":\([0-9][0-9]*\).*/\1/p" | head -1
}

# ---------------------------------------------------------------- phase 1
# Two shards, one router; a clean load through the router must be lossless.
start_shard 0
start_shard 1
start_router "$(shard_endpoint 0),$(shard_endpoint 1)"
echo "router up: http=$ROUTER_HTTP ingest=$ROUTER_INGEST over 2 shards"

"$LOADGEN" --targets="127.0.0.1:$ROUTER_HTTP:$ROUTER_INGEST" \
           --streams=40 --conns=4 --batch=20 --rounds=3 --json \
  || fail "lossless loadgen through the router (phase 1)"

rhttp GET /healthz | grep -q '"status":"ok"' || fail "router healthz after load"
rhttp GET /v1/shards | grep -q '"version":1' || fail "initial shard map version"
rhttp GET /metrics | python3 -m json.tool >/dev/null || fail "/metrics is not JSON"

# ---------------------------------------------------------------- phase 2
# Live reshard: install a 3-shard map while a loadgen run is in flight.
# The client must see zero rejects — migration is checkpoint handoff, not
# connection churn.
start_shard 2
"$LOADGEN" --targets="127.0.0.1:$ROUTER_HTTP:$ROUTER_INGEST" \
           --streams=40 --conns=4 --batch=5 --rounds=400 --json \
  >"$WORK/loadgen_migrate.json" 2>&1 &
LG_PID=$!
sleep 0.4
MAP=$(rhttp POST /v1/shards \
  "{\"shards\":[\"$(shard_endpoint 0)\",\"$(shard_endpoint 1)\",\"$(shard_endpoint 2)\"]}")
echo "reshard: $MAP"
echo "$MAP" | grep -q '"version":2' || fail "reshard did not bump the map version: $MAP"
echo "$MAP" | grep -q '"failed":0' || fail "reshard reported failed migrations: $MAP"
MOVED=$(echo "$MAP" | json_field moved)
[[ -n $MOVED && $MOVED -ge 1 ]] || fail "reshard moved no streams: $MAP"
if ! wait "$LG_PID"; then
  cat "$WORK/loadgen_migrate.json" >&2
  fail "loadgen saw rejects during live migration (phase 2)"
fi
rhttp GET /v1/shards | grep -q "$(shard_endpoint 2)" \
  || fail "shard map did not grow to include shard 2"

# Checkpoint fan-out: one POST on the router checkpoints every shard.
rhttp POST /v1/checkpoint | grep -q '"checkpointed":true' \
  || fail "checkpoint fan-out"
for i in 0 1 2; do
  [[ -s $WORK/shard$i.egis ]] || fail "shard $i checkpoint file missing"
done

# ---------------------------------------------------------------- phase 3
# SIGKILL one shard under load: its streams must turn into fast typed
# rejects (the other shards keep acking), health must degrade, and a
# restart on the same ports must be picked up by the probes.
"$LOADGEN" --targets="127.0.0.1:$ROUTER_HTTP:$ROUTER_INGEST" \
           --streams=30 --conns=3 --batch=5 --rounds=2000 --json \
  >"$WORK/loadgen_kill.json" 2>&1 &
LG_PID=$!
sleep 0.6
kill -9 "${SHARD_PID[1]}"
echo "killed shard 1 (pid ${SHARD_PID[1]}) under load"
if wait "$LG_PID"; then
  cat "$WORK/loadgen_kill.json" >&2
  fail "loadgen exited 0 despite a dead shard (phase 3)"
fi
REJECTS=$(json_field rejects <"$WORK/loadgen_kill.json")
ACCEPTED=$(json_field points_accepted <"$WORK/loadgen_kill.json")
[[ -n $REJECTS && $REJECTS -ge 1 ]] \
  || fail "expected typed rejects after shard loss: $(cat "$WORK/loadgen_kill.json")"
[[ -n $ACCEPTED && $ACCEPTED -ge 1 ]] \
  || fail "surviving shards accepted nothing: $(cat "$WORK/loadgen_kill.json")"
echo "shard loss: $ACCEPTED points accepted on survivors, $REJECTS typed rejects"
rhttp GET /healthz | grep -q '"status":"degraded"' \
  || fail "router healthz did not degrade after shard loss"

# Restart the shard on its recorded ports; restore-on-boot reloads its
# checkpoint and the router's probes must flip it healthy again.
start_shard 1
for _ in $(seq 100); do
  rhttp GET /healthz | grep -q '"status":"ok"' && break
  sleep 0.1
done
rhttp GET /healthz | grep -q '"status":"ok"' \
  || fail "router probes never recovered the restarted shard"
echo "shard 1 restarted and probed healthy again"

"$LOADGEN" --targets="127.0.0.1:$ROUTER_HTTP:$ROUTER_INGEST" \
           --streams=30 --conns=3 --batch=20 --rounds=3 --json \
  || fail "lossless loadgen after shard recovery (phase 3)"

kill_all
echo "functional phases passed; running 1-shard vs 4-shard throughput A/B"

# ---------------------------------------------------------------- phase 4
# Non-gated A/B: aggregate admitted points/s through one router over one
# scoring-bound shard vs four. Small queues + one worker make the shard
# engine the bottleneck, and the sustained run offers far more load than
# the shards can score, so the recorded points/s is the aggregate
# admission (scoring) rate — the number sharding actually multiplies.
# Backpressure rejects are expected on both legs (hence `|| true` — the
# JSON record is the deliverable, the trend report never gates on it).
SHARD_PID=(); SHARD_HTTP=(); SHARD_INGEST=()
for i in 0 1 2 3; do
  start_shard "$i" --queue-capacity=512 --workers=1
done

start_router "$(shard_endpoint 0)"
"$LOADGEN" --targets="127.0.0.1:$ROUTER_HTTP:$ROUTER_INGEST" \
           --name=router_1shard --streams=64 --conns=8 --batch=20 \
           --rounds=5000 --json | tee -a "$BENCH_OUT" || true
kill -9 "$ROUTER_PID" 2>/dev/null
wait "$ROUTER_PID" 2>/dev/null
ROUTER_PID=""

start_router "$(shard_endpoint 0),$(shard_endpoint 1),$(shard_endpoint 2),$(shard_endpoint 3)"
"$LOADGEN" --targets="127.0.0.1:$ROUTER_HTTP:$ROUTER_INGEST" \
           --name=router_4shard --streams=64 --conns=8 --batch=20 \
           --rounds=5000 --json | tee -a "$BENCH_OUT" || true

kill_all
rm -rf "$WORK"

# Report-only scaling summary: admitted points/s is scoring-bound, so the
# 4-shard/1-shard ratio tracks available cores — ~1x on a 1-core box, and
# the >=2x target is only expected where the shards actually get their own
# cores. The trend report archives the records either way.
python3 - "$BENCH_OUT" <<'EOF'
import json, os, sys
rates = {}
with open(sys.argv[1], encoding="utf-8") as fh:
    for line in fh:
        rec = json.loads(line)
        rates[rec["bench"]] = rec["points_per_sec"]
one, four = rates.get("router_1shard", 0.0), rates.get("router_4shard", 0.0)
ratio = four / one if one > 0 else 0.0
print(f"A/B (not gated): 1 shard {one:,.0f} pts/s, 4 shards {four:,.0f} "
      f"pts/s -> {ratio:.2f}x on {os.cpu_count()} core(s)")
EOF
echo "PASS: egid-router smoke (shard, reshard under load, kill, recover, A/B)"
