// egid — the ensemble grammar-induction detection daemon.
//
// Hosts a multi-tenant streaming detector hub behind two TCP planes (see
// src/service/): an HTTP/1.1 JSON control plane (stream CRUD, score
// queries, /metrics, /healthz) and a length-prefixed binary frame protocol
// for point ingest with per-tenant quotas and bounded-queue backpressure.
// Periodic atomic checkpoints make a SIGKILL survivable: on restart the
// daemon restores the last complete checkpoint and every stream continues
// bitwise-identically from its captured state.
//
// Configuration is flags first, environment second (every flag has an
// EGID_* env twin, parsed with the util/env.h helpers):
//
//   egid --http-port=8080 --ingest-port=8081 \
//        --checkpoint=/var/lib/egid/checkpoint.egis \
//        --checkpoint-interval=30 --window=64
//
// On startup egid prints one line to stdout:
//   egid ready http=<port> ingest=<port> streams=<n>
// which the smoke script and loadgen parse to find ephemeral ports.
// SIGTERM/SIGINT trigger a clean drain: stop accepting, reject new frames,
// score everything queued, write a final checkpoint, exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/hub_service.h"
#include "service/server.h"
#include "util/env.h"

namespace {

egi::service::Server* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();  // one atomic store
}

// --name=value (or --name value) flag reader over argv, with an env twin.
struct Flags {
  int argc;
  char** argv;

  const char* Find(const char* name) const {
    const size_t len = std::strlen(name);
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) continue;
      if (std::strncmp(arg + 2, name, len) != 0) continue;
      if (arg[2 + len] == '=') return arg + 2 + len + 1;
      if (arg[2 + len] == '\0' && i + 1 < argc) return argv[i + 1];
    }
    return nullptr;
  }

  int64_t Int(const char* name, const char* env, int64_t fallback) const {
    if (const char* v = Find(name); v != nullptr) return std::atoll(v);
    return egi::GetEnvInt(env, fallback);
  }
  double Double(const char* name, const char* env, double fallback) const {
    if (const char* v = Find(name); v != nullptr) return std::atof(v);
    return egi::GetEnvDouble(env, fallback);
  }
  std::string Str(const char* name, const char* env,
                  const std::string& fallback) const {
    if (const char* v = Find(name); v != nullptr) return v;
    return egi::GetEnvString(env, fallback);
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage: egid [--http-port=N] [--ingest-port=N] [--bind=ADDR]\n"
               "            [--spec=SPEC] [--window=N] [--buffer=N]\n"
               "            [--refit-interval=N] [--queue-capacity=N]\n"
               "            [--workers=N] [--max-streams-per-tenant=N]\n"
               "            [--points-per-second=R] [--quota-burst=N]\n"
               "            [--checkpoint=PATH] [--checkpoint-interval=SEC]\n"
               "Every flag has an EGID_* environment twin (EGID_HTTP_PORT,\n"
               "EGID_CHECKPOINT, ...). Ports default to 0 = ephemeral.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      return Usage();
    }
  }
  const Flags flags{argc, argv};

  egi::service::HubServiceOptions options;
  options.spec = flags.Str("spec", "EGID_SPEC", "ensemble");
  options.stream.window_length = static_cast<size_t>(
      flags.Int("window", "EGID_WINDOW", 64));
  options.stream.buffer_capacity = static_cast<size_t>(
      flags.Int("buffer", "EGID_BUFFER", 4096));
  options.stream.refit_interval = static_cast<size_t>(
      flags.Int("refit-interval", "EGID_REFIT_INTERVAL", 512));
  options.checkpoint_path = flags.Str("checkpoint", "EGID_CHECKPOINT", "");
  options.queue_capacity = static_cast<size_t>(
      flags.Int("queue-capacity", "EGID_QUEUE_CAPACITY", 8192));
  options.max_streams_per_tenant = static_cast<size_t>(
      flags.Int("max-streams-per-tenant", "EGID_MAX_STREAMS_PER_TENANT", 0));
  options.points_per_second =
      flags.Double("points-per-second", "EGID_POINTS_PER_SECOND", 0.0);
  options.quota_burst = flags.Double("quota-burst", "EGID_QUOTA_BURST", 0.0);
  options.num_workers = static_cast<size_t>(
      flags.Int("workers", "EGID_WORKERS", 2));

  auto service = egi::service::HubService::Create(std::move(options));
  if (!service.ok()) {
    std::fprintf(stderr, "egid: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  egi::service::ServerOptions server_options;
  server_options.bind_address = flags.Str("bind", "EGID_BIND", "127.0.0.1");
  server_options.http_port =
      static_cast<int>(flags.Int("http-port", "EGID_HTTP_PORT", 0));
  server_options.ingest_port =
      static_cast<int>(flags.Int("ingest-port", "EGID_INGEST_PORT", 0));
  server_options.checkpoint_interval_seconds =
      flags.Double("checkpoint-interval", "EGID_CHECKPOINT_INTERVAL", 0.0);

  egi::service::Server server(service->get(), server_options);
  const egi::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "egid: %s\n", started.ToString().c_str());
    return 1;
  }

  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);  // peer resets surface as write errors

  std::printf("egid ready http=%d ingest=%d streams=%zu\n",
              server.http_port(), server.ingest_port(),
              (*service)->num_streams());
  std::fflush(stdout);

  const egi::Status drained = server.Wait();
  g_server = nullptr;
  if (!drained.ok()) {
    std::fprintf(stderr, "egid: final checkpoint failed: %s\n",
                 drained.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "egid: drained cleanly\n");
  return 0;
}
